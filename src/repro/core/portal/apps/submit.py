"""Simulation submission (direct and optimization runs).

Form data is the *only* thing that touches the database, after passing
the bounded form fields and then the bounded model fields — the two-stage
strict marshaling chain.  GA seeds are generated server-side; users never
control them directly ("each GA is started with randomly generated seed
parameters").
"""

from __future__ import annotations

import secrets

from ....science.astec.physics import PARAMETER_BOUNDS
from ....webstack import (Http404, HttpResponseRedirect, path, render)
from ....webstack import forms
from ....webstack.auth import login_required
from ...models import (KIND_DIRECT, KIND_OPTIMIZATION, MACHINE_AUTO,
                       ObservationSet, Simulation, Star,
                       SubmitAuthorization)

#: The broker-backed machine choice: the gateway picks (and re-picks,
#: if a facility goes dark) the best healthy, funded site.
AUTO_CHOICE_LABEL = "Auto — let AMP choose"


class DirectRunForm(forms.Form):
    """The five ASTEC physical parameters, bounds from the science box."""

    mass = forms.FloatField(min_value=PARAMETER_BOUNDS["mass"][0],
                            max_value=PARAMETER_BOUNDS["mass"][1],
                            label="Mass (solar masses)")
    z = forms.FloatField(min_value=PARAMETER_BOUNDS["z"][0],
                         max_value=PARAMETER_BOUNDS["z"][1],
                         label="Metallicity Z")
    y = forms.FloatField(min_value=PARAMETER_BOUNDS["y"][0],
                         max_value=PARAMETER_BOUNDS["y"][1],
                         label="Helium mass fraction Y")
    alpha = forms.FloatField(min_value=PARAMETER_BOUNDS["alpha"][0],
                             max_value=PARAMETER_BOUNDS["alpha"][1],
                             label="Convective efficiency α")
    age = forms.FloatField(min_value=PARAMETER_BOUNDS["age"][0],
                           max_value=PARAMETER_BOUNDS["age"][1],
                           label="Age (Gyr)")


def make_optimization_form(machine_choices, observation_choices):
    class OptimizationForm(forms.Form):
        observation = forms.ChoiceField(choices=observation_choices,
                                        label="Observation set")
        machine = forms.ChoiceField(choices=machine_choices,
                                    label="Computing facility")
        iterations = forms.IntegerField(min_value=10, max_value=500,
                                        initial=200,
                                        label="GA iterations")
    return OptimizationForm


def build_routes(ctx):
    def _star(request, pk):
        try:
            return Star.objects.using(request.db).get(pk=pk)
        except Star.DoesNotExist:
            raise Http404(f"No star #{pk}")

    def _machine_choices(request):
        """Enabled, healthy machines, least congested first, flagged
        when busy.

        The congestion *and health* data is the daemon's published
        telemetry — the portal itself never touches the grid.  Machines
        whose circuit breaker is open are routed away from entirely
        (offered only if every machine is sick, flagged as unavailable,
        so the form never goes empty).  The broker-backed "Auto"
        choice is always offered first: even when every facility is
        sick it is the *resilient* option — the simulation waits in
        the placement pool and starts the moment one recovers."""
        records = [r for r in ctx.machine_records(request.db)
                   if r.enabled]
        records.sort(key=lambda r: (r.queue_depth, r.utilisation,
                                    r.name))
        healthy = [r for r in records if r.is_available]
        sick = [r for r in records if not r.is_available]
        choices = [(MACHINE_AUTO, AUTO_CHOICE_LABEL)]
        for record in healthy:
            label = record.display_name or record.name
            if record.is_busy:
                label += " (queue busy)"
            choices.append((record.name, label))
        if not healthy:
            for record in sick:
                label = (record.display_name or record.name) \
                    + " (temporarily unavailable)"
                choices.append((record.name, label))
        return choices

    def _default_machine(request):
        """Direct runs: the configured production machine, unless its
        breaker is open — then the healthiest alternative, and when
        *no* machine is healthy, the broker's Auto pool.

        Direct submissions never name a sick machine: previously an
        all-sick registry silently fell back to the configured default
        even with its breaker open; now such runs wait in the
        placement pool and start automatically on recovery.
        """
        records = [r for r in ctx.machine_records(request.db)
                   if r.enabled and r.is_available]
        names = {r.name for r in records}
        if ctx.default_machine_name in names:
            return ctx.default_machine_name
        if records:
            records.sort(key=lambda r: (r.queue_depth, r.utilisation,
                                        r.name))
            return records[0].name
        return MACHINE_AUTO

    def _user_authorized(request, machine_name):
        for auth in SubmitAuthorization.objects.using(request.db).filter(
                user_id=request.user.pk, active=True).select_related(
                "machine"):
            if machine_name == MACHINE_AUTO:
                # Auto needs *some* active authorization; the broker
                # only ever places on machines the user may use.
                return True
            if auth.machine.name == machine_name:
                return True
        return False

    def _record_submission(sim):
        """The trace begins here: the portal stamps the submission with
        the simulation's correlation id, which the daemon's spans and
        events carry through every later state transition."""
        if ctx.obs is None:
            return
        ctx.obs.metrics.counter(
            "portal_submissions_total",
            help="Simulations submitted through the portal").labels(
                kind=sim.kind).inc()
        ctx.obs.events.emit(
            "portal.submission", simulation=sim.pk,
            trace_id=sim.correlation_id, sim_kind=sim.kind,
            machine=sim.machine_name)

    def _existing_equivalent(request, star, parameters):
        """§1: the gateway "disseminates model results to the community
        without repetition" — an identical completed direct run is
        reused instead of recomputed."""
        for sim in Simulation.objects.using(request.db).filter(
                star_id=star.pk, kind=KIND_DIRECT, state="DONE").only(
                "parameters"):
            if sim.parameters == parameters:
                return sim
        return None

    @login_required
    def submit_direct(request, pk):
        star = _star(request, pk)
        if request.method == "POST":
            form = DirectRunForm(request.POST)
            if form.is_valid():
                existing = _existing_equivalent(request, star,
                                                form.cleaned_data)
                if existing is not None:
                    return HttpResponseRedirect(
                        f"/simulations/{existing.pk}/?reused=1")
                machine = _default_machine(request)
                sim = Simulation(
                    star_id=star.pk, owner_id=request.user.pk,
                    kind=KIND_DIRECT, machine_name=machine,
                    parameters=form.cleaned_data)
                sim.save(db=request.db)
                _record_submission(sim)
                return HttpResponseRedirect(f"/simulations/{sim.pk}/")
        else:
            form = DirectRunForm()
        return render(request, "submit_direct.html",
                      {"star": star, "form": form})

    @login_required
    def submit_optimization(request, pk):
        star = _star(request, pk)
        observations = list(ObservationSet.objects.using(
            request.db).filter(star_id=star.pk))
        if not observations:
            raise Http404(
                f"{star.name} has no observation sets to fit")
        obs_choices = [(str(o.pk), o.label) for o in observations]
        FormClass = make_optimization_form(_machine_choices(request),
                                           obs_choices)
        if request.method == "POST":
            form = FormClass(request.POST)
            if form.is_valid():
                machine = form.cleaned_data["machine"]
                if not _user_authorized(request, machine):
                    form.add_error("machine",
                                   "You are not authorized to submit to "
                                   "this facility.")
                else:
                    sim = Simulation(
                        star_id=star.pk,
                        observation_id=int(
                            form.cleaned_data["observation"]),
                        owner_id=request.user.pk,
                        kind=KIND_OPTIMIZATION, machine_name=machine,
                        config={
                            "n_ga_runs": 4,
                            "iterations":
                                form.cleaned_data["iterations"],
                            "population_size": 126,
                            "processors": 128,
                            "ga_seeds": [
                                secrets.randbelow(10 ** 6)
                                for _ in range(4)],
                        })
                    sim.save(db=request.db)
                    _record_submission(sim)
                    return HttpResponseRedirect(
                        f"/simulations/{sim.pk}/")
        else:
            form = FormClass()
        return render(request, "submit_optimization.html",
                      {"star": star, "form": form})

    return [
        path("submit/direct/<int:pk>/", submit_direct,
             name="submit-direct"),
        path("submit/optimization/<int:pk>/", submit_optimization,
             name="submit-optimization"),
    ]
