"""Star catalog browsing and search (with AJAX suggest + SIMBAD
fallback)."""

from __future__ import annotations

from ....webstack import (Http404, HttpResponseRedirect, JsonResponse,
                          Paginator, path, render)
from ...models import ObservationSet, Simulation, Star


def build_routes(ctx):
    catalog = ctx.catalog

    def star_list(request):
        # prefetch_related primes each star's reverse ``simulations``
        # accessor, so the template's per-row simulation count reads the
        # prefetched set instead of issuing one COUNT per star.
        paginator = Paginator(
            Star.objects.using(request.db).order_by("name")
            .prefetch_related("simulations"),
            per_page=25)
        page = paginator.get_page(request.GET.get("page", 1))
        return render(request, "star_list.html",
                      {"stars": page.object_list, "page": page})

    def star_detail(request, pk):
        try:
            star = Star.objects.using(request.db).get(pk=pk)
        except Star.DoesNotExist:
            raise Http404(f"No star #{pk}")
        observations = list(ObservationSet.objects.using(
            request.db).filter(star_id=pk))
        # The detail template renders describe()/state only — defer the
        # wide JSON payloads (results, parameters, config) so a star
        # with 20 finished optimizations doesn't ship megabytes of JSON
        # through the row parser just to print a state badge.
        simulations = list(Simulation.objects.using(request.db)
                           .filter(star_id=pk)
                           .defer("results", "parameters", "config")
                           .order_by("-id")[:20])
        return render(request, "star_detail.html", {
            "star": star, "observations": observations,
            "simulations": simulations})

    def star_search(request):
        """Plain-HTML search: local catalog, then SIMBAD import."""
        query = request.GET.get("q", "").strip()
        if not query:
            return HttpResponseRedirect("/stars/")
        star, created = catalog.search(query)
        if star is not None:
            return HttpResponseRedirect(f"/stars/{star.pk}/")
        stars = Star.objects.using(request.db).filter(
            name__icontains=query).order_by("name").prefetch_related(
            "simulations")[:50]
        return render(request, "star_list.html", {
            "stars": list(stars), "query": query,
            "not_found": not list(stars)})

    def suggest(request):
        """AJAX endpoint: suggest stars with results or in the Kepler
        catalog as soon as enough of an identifier disambiguates."""
        prefix = request.GET.get("q", "")
        return JsonResponse({"suggestions": catalog.suggest(prefix)})

    return [
        path("stars/", star_list, name="star-list"),
        path("stars/<int:pk>/", star_detail, name="star-detail"),
        path("stars/search/", star_search, name="star-search"),
        path("api/suggest/", suggest, name="star-suggest"),
    ]
