"""Simulation monitoring and completed-result viewing."""

from __future__ import annotations

from ....webstack import Http404, JsonResponse, path, render
from ....webstack.orm import Count
from ...models import (AllocationRecord, LEASE_KIND_PRESENCE,
                       LEASE_KIND_SLICE, LeaseRecord, MachineRecord,
                       RESERVATION_RESERVED, RESERVATION_SETTLED,
                       ReservationRecord, SIM_DONE, Simulation, Star)


def build_routes(ctx):
    display_names = ctx.machine_display_names

    def _get(request, pk):
        try:
            return Simulation.objects.using(request.db).get(pk=pk)
        except Simulation.DoesNotExist:
            raise Http404(f"No simulation #{pk}")

    def sim_list(request):
        # The listing renders each row's star name: select_related
        # JOIN-loads it (one query for the page instead of one per
        # simulation), and the wide JSON columns are deferred since the
        # table shows only identity/state/status columns.
        qs = (Simulation.objects.using(request.db).order_by("-id")
              .select_related("star")
              .defer("results", "parameters", "config"))
        if getattr(request.user, "is_authenticated", False):
            mine = qs.filter(owner_id=request.user.pk)
            simulations = list(mine[:50]) or list(qs[:50])
        else:
            simulations = list(qs[:50])
        return render(request, "sim_list.html",
                      {"simulations": simulations})

    def sim_detail(request, pk):
        sim = _get(request, pk)
        return render(request, "sim_detail.html", {
            "sim": sim,
            "machine_display": display_names.get(sim.machine_name,
                                                 sim.machine_name)})

    def hr_data(request, pk):
        """HR-diagram series (the portal's plot data endpoint)."""
        sim = _get(request, pk)
        if sim.state != SIM_DONE or not sim.results:
            raise Http404("Results not available")
        track = sim.results.get("track") or []
        return JsonResponse({
            "star": sim.star.name,
            "series": [{"age_gyr": p[0], "teff_k": p[1],
                        "luminosity_lsun": p[2], "radius_rsun": p[3]}
                       for p in track]})

    def echelle_data(request, pk):
        """Echelle-diagram points: ν mod Δν vs ν, per degree."""
        sim = _get(request, pk)
        if sim.state != SIM_DONE or not sim.results:
            raise Http404("Results not available")
        scalars = sim.results["scalars"]
        dnu = scalars["delta_nu"]
        points = []
        for degree, nus in sorted(sim.results["frequencies"].items()):
            for nu in nus:
                points.append({"degree": int(degree), "frequency": nu,
                               "modulo": nu % dnu})
        return JsonResponse({"star": sim.star.name, "delta_nu": dnu,
                             "points": points})

    def _done_or_404(request, pk):
        sim = _get(request, pk)
        if sim.state != SIM_DONE or not sim.results:
            raise Http404("Results not available")
        return sim

    def hr_svg_view(request, pk):
        """The HR diagram itself, as an SVG document."""
        from ...plots import hr_diagram_svg
        from ....webstack import HttpResponse
        sim = _done_or_404(request, pk)
        scalars = sim.results["scalars"]
        svg = hr_diagram_svg(sim.results.get("track") or [],
                             star_name=sim.star.name,
                             current=(scalars["teff"],
                                      scalars["luminosity"]))
        return HttpResponse(svg, content_type="image/svg+xml")

    def echelle_svg_view(request, pk):
        """The Echelle plot itself, as an SVG document."""
        from ...plots import echelle_svg
        from ....webstack import HttpResponse
        sim = _done_or_404(request, pk)
        svg = echelle_svg(sim.results["frequencies"],
                          sim.results["scalars"]["delta_nu"],
                          star_name=sim.star.name)
        return HttpResponse(svg, content_type="image/svg+xml")

    def cancel_simulation(request, pk):
        """Owner-initiated cancellation of a not-yet-started simulation.

        Only QUEUED simulations can be withdrawn from the portal — once
        the daemon owns the workflow, operators handle intervention.
        """
        from ....webstack import (HttpResponseBadRequest,
                                  HttpResponseForbidden,
                                  HttpResponseRedirect)
        sim = _get(request, pk)
        if request.method != "POST":
            return HttpResponseBadRequest(b"POST required")
        if not getattr(request.user, "is_authenticated", False) \
                or sim.owner_id != request.user.pk:
            return HttpResponseForbidden(
                b"Only the owner may cancel a simulation")
        if sim.state != "QUEUED":
            return HttpResponseBadRequest(
                b"Only queued simulations can be cancelled")
        sim.state = "CANCELLED"
        sim.status_message = "Cancelled before processing began."
        sim.save(db=request.db)
        return HttpResponseRedirect(f"/simulations/{sim.pk}/")

    def statistics(request):
        """Gateway statistics: simulations by state/kind, SU usage,
        and facility health (queue depth + breaker state, as published
        by the daemon's telemetry channel)."""
        sims = Simulation.objects.using(request.db)
        by_state = sims.values_count("state")
        by_kind = sims.values_count("kind")
        by_machine = sims.values_count("machine_name")
        totals = sims.aggregate(total=Count("*"))
        allocations = []
        for record in AllocationRecord.objects.using(
                request.db).select_related("machine"):
            allocations.append({
                "project": record.project,
                "machine": record.machine.display_name
                or record.machine.name,
                "su_used": record.su_used,
                "su_granted": record.su_granted,
            })
        facilities = []
        for record in MachineRecord.objects.using(
                request.db).order_by("name"):
            if record.breaker_state == "closed":
                health = "available"
            elif record.breaker_state == "open":
                health = "unavailable"
            else:
                health = "recovering"
            facilities.append({
                "name": record.display_name or record.name,
                # Plain-language substrate labels — no middleware
                # jargon on user-facing pages.
                "backend": {"gram": "Grid batch",
                            "local": "Local pool",
                            "cloud": "Cloud"}.get(record.backend,
                                                  record.backend),
                "health": health,
                "queue_depth": record.queue_depth,
                "utilisation": record.utilisation,
            })
        # Resource-brokering digest: what the placement engine decided,
        # read straight from the reservation ledger (portal-readable,
        # daemon-written) plus the observability counters.
        per_machine = {}
        brokering = {"active": 0, "reserved_su": 0.0,
                     "settled": 0, "settled_su": 0.0, "released": 0}
        for row in ReservationRecord.objects.using(request.db).all():
            machine = per_machine.setdefault(
                row.machine_name,
                {"machine": display_names.get(row.machine_name,
                                              row.machine_name),
                 "active": 0, "reserved_su": 0.0, "settled": 0,
                 "settled_su": 0.0})
            if row.state == RESERVATION_RESERVED:
                machine["active"] += 1
                machine["reserved_su"] += row.estimated_su
                brokering["active"] += 1
                brokering["reserved_su"] += row.estimated_su
            elif row.state == RESERVATION_SETTLED:
                machine["settled"] += 1
                machine["settled_su"] += row.settled_su or 0.0
                brokering["settled"] += 1
                brokering["settled_su"] += row.settled_su or 0.0
            else:
                brokering["released"] += 1
        brokering["by_machine"] = [
            per_machine[name] for name in sorted(per_machine)]
        brokering["instrumented"] = ctx.obs is not None
        if ctx.obs is not None:
            brokering["placements"] = int(
                ctx.obs.metrics.total("sched_placements_total"))
            brokering["migrations"] = int(
                ctx.obs.metrics.total("sched_migrations_total"))
            brokering["refusals"] = int(
                ctx.obs.metrics.total("sched_refusals_total"))
        # Daemon-fleet digest: who is alive and who owns which slice
        # of the work partition, read straight from the lease table
        # (portal-readable, daemon-written) — the operator's one-look
        # answer to "is the fleet healthy and balanced?".
        now = ctx.clock.now if ctx.clock is not None else 0.0
        fleet = {"instances": [], "slices": [], "enabled": False}
        for row in LeaseRecord.objects.using(request.db).order_by("id"):
            fleet["enabled"] = True
            if row.kind == LEASE_KIND_PRESENCE:
                fleet["instances"].append({
                    "instance": row.owner,
                    "heartbeat_age": max(0.0, now - row.renewed_at),
                    "live": row.expires_at > now,
                })
            elif row.kind == LEASE_KIND_SLICE:
                fleet["slices"].append({
                    "slice": row.slice_index,
                    "of": row.n_slices,
                    "owner": row.owner or "(unclaimed)",
                    "token": row.fencing_token,
                    "expired": row.expires_at <= now,
                })
        fleet["live_count"] = sum(
            1 for i in fleet["instances"] if i["live"])
        return render(request, "statistics.html", {
            "fleet": fleet,
            "brokering": brokering,
            "by_state": sorted(by_state.items()),
            "by_kind": sorted(by_kind.items()),
            "by_machine": sorted(by_machine.items()),
            "total": totals["total"],
            "star_count": Star.objects.using(request.db).count(),
            "allocations": allocations,
            "facilities": facilities,
            "ops": ctx.obs.health_summary() if ctx.obs else None,
        })

    def metrics_view(request):
        """Prometheus text exposition of the whole gateway's metrics.

        The portal only *reads* the registry — all instrumented layers
        (daemon, grid clients, webstack) share the one deployment-wide
        facade, so a single scrape covers the whole architecture.
        """
        from ....webstack import HttpResponse
        if ctx.obs is None:
            raise Http404("Observability not enabled")
        return HttpResponse(
            ctx.obs.metrics.render_prometheus(),
            content_type="text/plain; version=0.0.4; charset=utf-8")

    return [
        path("statistics/", statistics, name="statistics"),
        path("metrics", metrics_view, name="metrics"),
        path("simulations/<int:pk>/cancel/", cancel_simulation,
             name="sim-cancel"),
        path("simulations/", sim_list, name="sim-list"),
        path("simulations/<int:pk>/", sim_detail, name="sim-detail"),
        path("simulations/<int:pk>/hr/", hr_data, name="sim-hr"),
        path("simulations/<int:pk>/echelle/", echelle_data,
             name="sim-echelle"),
        path("simulations/<int:pk>/hr.svg", hr_svg_view,
             name="sim-hr-svg"),
        path("simulations/<int:pk>/echelle.svg", echelle_svg_view,
             name="sim-echelle-svg"),
    ]
