"""The portal's JSON API (``/api/v1/``): simulations and campaigns.

Three endpoints for astronomers with scripts:

- ``GET /api/v1/simulations`` — the simulation catalog, cursor-paginated
  (newest first) and filterable by state/kind/star/campaign;
- ``POST /api/v1/campaigns`` — submit a parameter-sweep campaign: the
  sweep is validated as a whole and either every simulation is created
  in one transaction or none is;
- ``GET /api/v1/campaigns/<id>`` — one campaign with its per-state
  simulation counts.

Every error body follows the plain-language convention from
:mod:`repro.serve.api` — one sentence per problem, keyed by the field
that caused it, no grid or database jargon.
"""

from __future__ import annotations

from ....science.astec.physics import PARAMETER_BOUNDS
from ....serve.api import (ApiError, error_response, expand_sweep,
                           parse_json_body)
from ....webstack import CursorPaginator, InvalidCursor, path
from ....webstack.http import JsonResponse
from ...models import (CampaignRecord, KIND_DIRECT, KIND_OPTIMIZATION,
                       MACHINE_AUTO, MachineRecord, SIM_STATES,
                       Simulation, Star, SubmitAuthorization)

#: Largest page a client may request in one call.
MAX_PAGE_SIZE = 200
DEFAULT_PAGE_SIZE = 50

#: Ceiling on one campaign's grid (one simulation per point).
MAX_CAMPAIGN_POINTS = 5000


def _iso(value):
    return value.isoformat() if hasattr(value, "isoformat") else value


def _simulation_payload(sim):
    return {
        "id": sim.pk,
        "star": sim.star_id,
        "campaign": sim.campaign_id,
        "kind": sim.kind,
        "state": sim.state,
        "machine": sim.machine_name,
        "created": _iso(sim.created),
        "updated": _iso(sim.updated),
    }


def _campaign_payload(campaign, state_counts):
    return {
        "id": campaign.pk,
        "name": campaign.name,
        "star": campaign.star_id,
        "owner": campaign.owner_id,
        "machine": campaign.machine_name,
        "simulations": campaign.sim_count,
        "states": {state: state_counts[state]
                   for state in sorted(state_counts)},
        "sweep": campaign.spec,
        "created": _iso(campaign.created),
    }


def build_routes(ctx):

    def _record_campaign(campaign, sims):
        if ctx.obs is None:
            return
        ctx.obs.metrics.counter(
            "portal_campaigns_total",
            help="Parameter-sweep campaigns accepted by the API").inc()
        ctx.obs.metrics.counter(
            "portal_submissions_total",
            help="Simulations submitted through the portal").labels(
                kind=KIND_DIRECT).inc(len(sims))
        ctx.obs.events.emit(
            "portal.campaign", campaign=campaign.pk,
            star=campaign.star_id, machine=campaign.machine_name,
            simulations=len(sims))

    # ------------------------------------------------------------------
    # GET /api/v1/simulations
    # ------------------------------------------------------------------

    def sim_list(request):
        if request.method != "GET":
            response = error_response(
                405, "This address only answers GET requests.")
            response.headers["Allow"] = "GET"
            return response
        queryset = Simulation.objects.using(request.db).defer(
            "parameters", "config", "results")
        fields = {}
        state = request.GET.get("state")
        if state:
            if state not in SIM_STATES:
                fields["state"] = [
                    "This is not a simulation state. Expected one of: "
                    + ", ".join(SIM_STATES) + "."]
            else:
                queryset = queryset.filter(state=state)
        kind = request.GET.get("kind")
        if kind:
            if kind not in (KIND_DIRECT, KIND_OPTIMIZATION):
                fields["kind"] = [
                    "This is not a simulation kind. Expected "
                    f"{KIND_DIRECT} or {KIND_OPTIMIZATION}."]
            else:
                queryset = queryset.filter(kind=kind)
        for name in ("star", "campaign"):
            raw = request.GET.get(name)
            if raw:
                try:
                    queryset = queryset.filter(**{name + "_id": int(raw)})
                except ValueError:
                    fields[name] = [f"The {name} filter must be a "
                                    "whole number."]
        limit = DEFAULT_PAGE_SIZE
        raw_limit = request.GET.get("limit")
        if raw_limit:
            try:
                limit = int(raw_limit)
            except ValueError:
                limit = 0
            if not 1 <= limit <= MAX_PAGE_SIZE:
                fields["limit"] = [
                    "The page size must be a whole number between 1 "
                    f"and {MAX_PAGE_SIZE}."]
        if fields:
            return error_response(
                400, "Some filters could not be understood.", fields)
        paginator = CursorPaginator(queryset, per_page=limit)
        try:
            page = paginator.page(request.GET.get("cursor") or None)
        except InvalidCursor:
            return error_response(
                400, "The cursor is not one this service issued. Walk "
                     "pages using the next_cursor value from the "
                     "previous response.")
        return JsonResponse({
            "simulations": [_simulation_payload(s)
                            for s in page.object_list],
            "next_cursor": page.next_cursor,
        })

    # ------------------------------------------------------------------
    # GET /api/v1/campaigns/<id>
    # ------------------------------------------------------------------

    def campaign_detail(request, pk):
        if request.method != "GET":
            response = error_response(
                405, "This address only answers GET requests.")
            response.headers["Allow"] = "GET"
            return response
        try:
            campaign = CampaignRecord.objects.using(request.db).get(pk=pk)
        except CampaignRecord.DoesNotExist:
            return error_response(404, f"There is no campaign #{pk}.")
        counts = Simulation.objects.using(request.db).filter(
            campaign_id=pk).values_count("state")
        return JsonResponse(
            {"campaign": _campaign_payload(campaign, counts)})

    # ------------------------------------------------------------------
    # POST /api/v1/campaigns
    # ------------------------------------------------------------------

    def _resolve_star(request, raw, fields):
        if raw is None:
            fields["star"] = ["Name the star to model (its catalog "
                              "number or its name)."]
            return None
        queryset = Star.objects.using(request.db)
        try:
            if isinstance(raw, bool):
                raise ValueError
            if isinstance(raw, int):
                return queryset.get(pk=raw)
            if isinstance(raw, str):
                return queryset.get(name=raw)
            raise ValueError
        except Star.DoesNotExist:
            fields["star"] = [f"No star named {raw!r} is in the "
                              "catalog. Import it first."]
        except ValueError:
            fields["star"] = ["Identify the star by its catalog number "
                              "or its name."]
        return None

    def _resolve_machine(request, raw, fields):
        if raw is None:
            return MACHINE_AUTO
        if not isinstance(raw, str):
            fields["machine"] = ["Name the computing facility as text, "
                                 f"or use {MACHINE_AUTO!r}."]
            return None
        if raw == MACHINE_AUTO:
            return raw
        enabled = [m for m in MachineRecord.objects.using(
            request.db).order_by("name") if m.enabled]
        names = [m.name for m in enabled]
        if raw not in names:
            offered = ", ".join(names + [MACHINE_AUTO])
            fields["machine"] = [
                f"{raw!r} is not an available computing facility. "
                f"Choose one of: {offered}."]
            return None
        return raw

    def _user_authorized(request, machine_name):
        for auth in SubmitAuthorization.objects.using(request.db).filter(
                user_id=request.user.pk, active=True).select_related(
                "machine"):
            if machine_name == MACHINE_AUTO:
                return True
            if auth.machine.name == machine_name:
                return True
        return False

    def campaign_create(request):
        if request.method != "POST":
            response = error_response(
                405, "Submit campaigns by POSTing a JSON description "
                     "to this address.")
            response.headers["Allow"] = "POST"
            return response
        if not getattr(request.user, "is_authenticated", False):
            return error_response(
                401, "Sign in before submitting a campaign. Send your "
                     "session cookie with the request.")
        try:
            data = parse_json_body(request)
        except ApiError as exc:
            return error_response(exc.status, exc.message, exc.fields)

        fields = {}
        unknown = set(data) - {"star", "name", "machine", "sweep"}
        for key in sorted(unknown):
            fields[key] = ["This is not part of a campaign description "
                           "(use star, name, machine, and sweep)."]
        name = data.get("name", "")
        if not isinstance(name, str):
            fields["name"] = ["The campaign name must be text."]
        elif len(name) > 120:
            fields["name"] = ["The campaign name is too long (at most "
                              "120 characters)."]
        star = _resolve_star(request, data.get("star"), fields)
        machine = _resolve_machine(request, data.get("machine"), fields)
        if "sweep" not in data:
            fields["sweep"] = ["Describe the parameter sweep (one entry "
                               "per model parameter)."]
            points = []
        else:
            points, sweep_errors = expand_sweep(
                data["sweep"], PARAMETER_BOUNDS,
                max_points=MAX_CAMPAIGN_POINTS)
            fields.update(sweep_errors)
        if machine is not None and not fields \
                and not _user_authorized(request, machine):
            fields["machine"] = ["You are not authorized to submit to "
                                 "this facility."]
        if fields:
            return error_response(
                400, "The campaign was not submitted; nothing was "
                     "created. Fix the problems below and retry.",
                fields)

        # One transaction: the campaign row and every member simulation
        # land together or not at all.
        with request.db.atomic():
            campaign = CampaignRecord(
                owner_id=request.user.pk, star_id=star.pk, name=name,
                machine_name=machine, spec=data["sweep"],
                sim_count=len(points))
            campaign.save(db=request.db)
            sims = [Simulation(star_id=star.pk, owner_id=request.user.pk,
                               campaign_id=campaign.pk, kind=KIND_DIRECT,
                               machine_name=machine, parameters=point)
                    for point in points]
            Simulation.objects.using(request.db).bulk_create(sims)
        _record_campaign(campaign, sims)
        return JsonResponse({
            "campaign": campaign.pk,
            "created": len(sims),
            "simulations": [s.pk for s in sims],
        }, status=201)

    return [
        path("api/v1/simulations", sim_list, name="api-sim-list"),
        path("api/v1/campaigns", campaign_create,
             name="api-campaign-create"),
        path("api/v1/campaigns/<int:pk>", campaign_detail,
             name="api-campaign-detail"),
    ]
