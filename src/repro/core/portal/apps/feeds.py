"""RSS feeds — the paper's §6 front-end future-work item, implemented.

"we are currently investigating the best way to provide simulation
progress and star result updates via RSS" — this application provides
both: a per-star feed of completed results and a per-user feed of
simulation progress, as RSS 2.0 XML.  Feeds are public-read like the
rest of the results site, and carry no grid jargon by construction
(they render from the same simulation rows the UI shows).
"""

from __future__ import annotations

from ....webstack import Http404, HttpResponse, path
from ....webstack.templates.context import escape
from ...models import SIM_DONE, Simulation, Star


def _rfc822(dt):
    if dt is None:
        return ""
    return dt.strftime("%a, %d %b %Y %H:%M:%S +0000")


def _render_feed(*, title, link, description, items):
    chunks = [
        '<?xml version="1.0" encoding="utf-8"?>',
        '<rss version="2.0"><channel>',
        f"<title>{escape(title)}</title>",
        f"<link>{escape(link)}</link>",
        f"<description>{escape(description)}</description>",
    ]
    for item in items:
        chunks.append("<item>")
        chunks.append(f"<title>{escape(item['title'])}</title>")
        chunks.append(f"<link>{escape(item['link'])}</link>")
        chunks.append(f"<guid isPermaLink=\"false\">"
                      f"{escape(item['guid'])}</guid>")
        chunks.append(f"<description>{escape(item['description'])}"
                      "</description>")
        if item.get("pub_date"):
            chunks.append(f"<pubDate>{item['pub_date']}</pubDate>")
        chunks.append("</item>")
    chunks.append("</channel></rss>")
    return HttpResponse("".join(chunks),
                        content_type="application/rss+xml; charset=utf-8")


def _describe_result(simulation):
    results = simulation.results or {}
    scalars = results.get("scalars") or {}
    if not scalars:
        return "Results are available on the website."
    return (f"Teff {scalars.get('teff', 0):.0f} K, "
            f"L {scalars.get('luminosity', 0):.2f} Lsun, "
            f"R {scalars.get('radius', 0):.2f} Rsun, "
            f"large separation {scalars.get('delta_nu', 0):.1f} uHz")


def build_routes(ctx):
    def star_feed(request, pk):
        """Completed-result updates for one star of interest."""
        try:
            star = Star.objects.using(request.db).get(pk=pk)
        except Star.DoesNotExist:
            raise Http404(f"No star #{pk}")
        base = request.build_absolute_uri("/")[:-1]
        simulations = Simulation.objects.using(request.db).filter(
            star_id=star.pk, state=SIM_DONE).order_by("-id")[:20]
        items = [{
            "title": f"{sim.kind.capitalize()} run #{sim.pk} complete",
            "link": f"{base}/simulations/{sim.pk}/",
            "guid": f"amp-sim-{sim.pk}-done",
            "description": _describe_result(sim),
            "pub_date": _rfc822(sim.updated),
        } for sim in simulations]
        return _render_feed(
            title=f"AMP results for {star.name}",
            link=f"{base}/stars/{star.pk}/",
            description=f"New asteroseismic results for {star.name} "
                        "from the Asteroseismic Modeling Portal.",
            items=items)

    def progress_feed(request, pk):
        """Progress updates for every simulation of one star
        (any state, newest first) — the 'simulation progress' feed."""
        try:
            star = Star.objects.using(request.db).get(pk=pk)
        except Star.DoesNotExist:
            raise Http404(f"No star #{pk}")
        base = request.build_absolute_uri("/")[:-1]
        simulations = Simulation.objects.using(request.db).filter(
            star_id=star.pk).order_by("-id")[:20]
        items = [{
            "title": f"Simulation #{sim.pk}: {sim.state}",
            "link": f"{base}/simulations/{sim.pk}/",
            "guid": f"amp-sim-{sim.pk}-{sim.state.lower()}",
            "description": sim.status_message
            or f"{sim.kind.capitalize()} run on its way.",
            "pub_date": _rfc822(sim.updated),
        } for sim in simulations]
        return _render_feed(
            title=f"AMP simulation progress for {star.name}",
            link=f"{base}/stars/{star.pk}/",
            description="Status changes for simulations of "
                        f"{star.name}.",
            items=items)

    return [
        path("feeds/star/<int:pk>/results.rss", star_feed,
             name="feed-star-results"),
        path("feeds/star/<int:pk>/progress.rss", progress_feed,
             name="feed-star-progress"),
    ]
