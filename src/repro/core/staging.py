"""Input regeneration and result interpretation (daemon side).

The security-critical marshaling step (§3): "the input files are
regenerated from the database by the GridAMP daemon and then staged to
TeraGrid systems.  It is thus exceptionally difficult to send any data
other than a properly formatted asteroseismology input file to a TeraGrid
resource."  Nothing user-supplied flows to a resource except what these
functions *re-serialise from validated database columns*.
"""

from __future__ import annotations

import json

from ..hpc.filesystem import extract_tar_to_dict
from ..science.astec.model import (StellarParameters, parse_output,
                                   write_input_file)
from .models import KIND_DIRECT, KIND_OPTIMIZATION


class StagingError(Exception):
    pass


def generate_input_files(simulation, observation=None):
    """Regenerate the staged input files for a simulation from DB rows.

    Returns ``{relative_path: text}``.  Raises :class:`StagingError` if
    the database rows cannot produce a valid input set — which, given
    the field constraints, indicates an internal bug rather than bad
    user input.

    Callers that have the observation loaded (the optimization workflow
    reads it through the simulation's FK, a cache hit under the daemon's
    ``select_related("observation")``) pass it explicitly; ``None``
    means "no observation set", never "please fetch it".
    """
    if simulation.kind == KIND_DIRECT:
        params = simulation.parameters or {}
        try:
            stellar = StellarParameters.from_dict(params)
            stellar.validate()
        except (KeyError, TypeError, ValueError) as exc:
            raise StagingError(
                f"Simulation #{simulation.pk} parameters invalid: {exc}")
        return {"input.txt": write_input_file(stellar)}

    if simulation.kind == KIND_OPTIMIZATION:
        if observation is None:
            raise StagingError(
                f"Optimization #{simulation.pk} has no observation set")
        config = dict(simulation.config or {})
        required = ("ga_seeds", "iterations", "population_size",
                    "processors")
        missing = [key for key in required if key not in config]
        if missing:
            raise StagingError(
                f"Optimization config missing {missing}")
        obs_payload = {
            "name": observation.label,
            "teff": observation.teff,
            "teff_err": observation.teff_err,
            "luminosity": observation.luminosity,
            "luminosity_err": observation.luminosity_err,
            "delta_nu": observation.delta_nu,
            "delta_nu_err": observation.delta_nu_err,
            "d02": observation.d02,
            "d02_err": observation.d02_err,
            "nu_max": observation.nu_max,
            "nu_max_err": observation.nu_max_err,
            "frequencies": observation.frequencies or {},
        }
        return {
            "observations.json": json.dumps(obs_payload, sort_keys=True),
            "config.json": json.dumps(config, sort_keys=True),
        }

    raise StagingError(f"Unknown simulation kind {simulation.kind!r}")


# ----------------------------------------------------------------------
# Result interpretation
# ----------------------------------------------------------------------

def interpret_progress(progress_payload):
    """Validate a staged-out GA progress file (partial results).

    "the most complex portion of the workflow is downloading and
    interpreting partial result files" (§5) — malformed progress files
    are model failures.
    """
    try:
        payload = progress_payload if isinstance(progress_payload, dict) \
            else json.loads(progress_payload)
        return {
            "ga_index": int(payload["ga_index"]),
            "iterations_completed": int(payload["iterations_completed"]),
            "target_iterations": int(payload["target_iterations"]),
            "finished": bool(payload["finished"]),
            "best_parameters": [float(v)
                                for v in payload["best_parameters"]],
            "best_fitness": float(payload["best_fitness"]),
            "elapsed_s": float(payload["elapsed_s"]),
            "total_elapsed_s": float(
                payload.get("total_elapsed_s", payload["elapsed_s"])),
            "iteration_times": [float(t)
                                for t in payload["iteration_times"]],
        }
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise StagingError(f"Progress file failed to parse: {exc}")


def interpret_output_tarball(blob, simulation_kind):
    """Unpack and parse the post-job tarball into a results payload.

    Returns the dict stored on ``Simulation.results``.  Raises
    :class:`StagingError` (→ HOLD) when mandatory files are absent or a
    result line fails to parse — the paper's canonical model-failure
    examples.
    """
    import tarfile
    try:
        files = extract_tar_to_dict(blob)
    except (tarfile.TarError, EOFError, ValueError) as exc:
        raise StagingError(f"Output tarball unreadable: {exc}")

    def read_output(name):
        if name not in files:
            raise StagingError(
                f"Mandatory output file {name!r} absent from tarball")
        from ..science.astec.model import ModelOutputError
        try:
            return parse_output(files[name].decode("utf-8"))
        except ModelOutputError as exc:
            raise StagingError(f"{name}: {exc}")

    if simulation_kind == KIND_DIRECT:
        scalars, freqs, track = read_output("output.txt")
        return {
            "scalars": scalars,
            "frequencies": {str(l): v for l, v in freqs.items()},
            "track": track,
        }

    scalars, freqs, track = read_output("solution.txt")
    progress = {}
    for name, data in files.items():
        if name.endswith("progress.json"):
            payload = interpret_progress(data.decode("utf-8"))
            progress[str(payload["ga_index"])] = payload
    if not progress:
        raise StagingError("No GA progress files in output tarball")
    meta = {}
    if "solution_meta.json" in files:
        meta = json.loads(files["solution_meta.json"].decode("utf-8"))
    return {
        "scalars": scalars,
        "frequencies": {str(l): v for l, v in freqs.items()},
        "track": track,
        "ga_progress": progress,
        "solution_meta": meta,
    }
