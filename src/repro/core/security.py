"""The deployment's database privilege scheme (§3).

Three roles on the shared database, mirroring the paper's three-server
architecture:

- **portal** — the public web server.  May read the catalog and results,
  create stars/observations/simulations from validated form data, manage
  its own auth sessions, and update narrow user-owned fields.  It may
  *never* touch grid-job rows' content, delete simulations, or read or
  write anything credential-like (there is nothing credential-like in
  the database to begin with — credentials live only on the daemon
  host).
- **daemon** — the GridAMP daemon.  May read everything it orchestrates
  and write workflow state, grid jobs, results, and allocation usage.
  It has no business in session rows and cannot create accounts.
- **admin** — developers' role for the (non-public) admin interface;
  full privileges.
"""

from __future__ import annotations

from ..webstack.orm import Grant, RoleRegistry

PORTAL_GRANTS = {
    # Auth: registration, login bookkeeping, sessions.
    "auth_user": {"select", "insert", "update"},
    "auth_session": {"select", "insert", "update", "delete"},
    # Catalog: browse/search and SIMBAD-import.
    "amp_star": {"select", "insert"},
    "amp_observation": {"select", "insert"},
    # Submission and monitoring.
    "amp_simulation": {"select", "insert", "update"},
    # Bulk campaign submissions land through the portal's API; the
    # campaign row and its simulations insert in one transaction.
    "amp_campaign": {"select", "insert"},
    "amp_gridjob": {"select"},
    # The operation journal is read-only for the portal (the statistics
    # page digests the last recovery sweep); only the daemon writes it.
    "amp_operation": {"select"},
    # The SU-reservation ledger likewise: the statistics page renders
    # the placement digest from it, but only the daemon's broker books
    # and settles reservations.
    "amp_reservation": {"select"},
    # Fleet leases: the statistics page renders the fleet digest
    # (instances, slices, heartbeats); only daemons claim and renew.
    "amp_lease": {"select"},
    # Back-end registry: read-only for form choices.
    "amp_machine": {"select"},
    "amp_allocation": {"select"},
    "amp_profile": {"select", "insert", "update"},
    "amp_submit_auth": {"select"},
}

DAEMON_GRANTS = {
    "auth_user": {"select"},                 # e-mail addresses
    "amp_star": {"select"},
    "amp_observation": {"select"},
    "amp_campaign": {"select"},              # campaign membership
    "amp_simulation": {"select", "update"},
    "amp_gridjob": {"select", "insert", "update"},
    # The write-ahead operation journal: the daemon owns it outright.
    "amp_operation": {"select", "insert", "update"},
    # The broker's SU-reservation ledger: daemon-owned too.
    "amp_reservation": {"select", "insert", "update"},
    # Work-partition leases: claimed/renewed/stolen through
    # conditional updates; rows are never deleted, only expired.
    "amp_lease": {"select", "insert", "update"},
    "amp_machine": {"select", "update"},   # queue telemetry
    "amp_allocation": {"select", "update"},  # SU charging
    "amp_profile": {"select"},
    "amp_submit_auth": {"select"},
}


def build_role_registry():
    registry = RoleRegistry()
    registry.define("portal", Grant(PORTAL_GRANTS))
    registry.define("daemon", Grant(DAEMON_GRANTS))
    return registry


def audit_role_separation(databases):
    """Structural audit used by tests/benches for the Figure 2 claims.

    Returns a dict of booleans, all of which must be True:

    - the portal role cannot write grid jobs,
    - the portal role cannot delete simulations,
    - the daemon role cannot create users or touch sessions,
    - neither non-admin role can run raw SQL or DDL.
    """
    portal = databases.portal
    daemon = databases.daemon

    def denied(db, operation, table):
        from ..webstack.orm import PermissionDenied
        try:
            db.check_permission(operation, table)
        except PermissionDenied:
            return True
        return False

    return {
        "portal_cannot_write_gridjobs":
            denied(portal, "insert", "amp_gridjob")
            and denied(portal, "update", "amp_gridjob"),
        "portal_cannot_delete_simulations":
            denied(portal, "delete", "amp_simulation"),
        "daemon_cannot_create_users":
            denied(daemon, "insert", "auth_user"),
        "daemon_cannot_touch_sessions":
            denied(daemon, "select", "auth_session")
            and denied(daemon, "insert", "auth_session"),
        "portal_cannot_run_ddl":
            denied(portal, "create", "amp_star"),
        "daemon_cannot_run_ddl":
            denied(daemon, "create", "amp_star"),
        "portal_no_raw_sql": not portal._grant.allow_raw_sql,
        "daemon_no_raw_sql": not daemon._grant.allow_raw_sql,
    }
