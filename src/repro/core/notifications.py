"""User and administrator notifications.

The paper's policy (§4.4): users are never exposed to grid jargon or
transient failures; they may opt into completion e-mails or
per-transition e-mails.  Transients notify administrators only.  Model
failures (HOLD) notify both.  Daemon failures are watched externally
(here, a heartbeat the external monitor can assert on).
"""

from __future__ import annotations

from dataclasses import dataclass

AUDIENCE_USER = "user"
AUDIENCE_ADMIN = "admin"

#: Terms users must never see in a notification (§5: "the word
#: 'certificate' is not even mentioned anywhere on the site").
GRID_JARGON = ("certificate", "proxy", "gram", "gridftp", "globus",
               "rsl", "gatekeeper", "saml")


@dataclass(frozen=True)
class Message:
    audience: str
    recipient: str
    subject: str
    body: str
    timestamp: float


class JargonLeak(AssertionError):
    """A user-facing message contained grid jargon — a policy bug."""


class Mailer:
    """Outbox-recording mailer with the jargon firewall built in."""

    def __init__(self, clock, admin_address="amp-admin@ucar.edu"):
        self.clock = clock
        self.admin_address = admin_address
        self.outbox = []

    def send(self, audience, recipient, subject, body):
        if audience == AUDIENCE_USER:
            import re
            lowered = (subject + " " + body).lower()
            for word in GRID_JARGON:
                # Word-boundary match: "GRAM" is jargon, "diagram" is
                # legitimate astronomy vocabulary.
                if re.search(rf"\b{word}\b", lowered):
                    raise JargonLeak(
                        f"User-facing message contains {word!r}: "
                        f"{subject!r}")
        message = Message(audience=audience, recipient=recipient,
                          subject=subject, body=body,
                          timestamp=self.clock.now)
        self.outbox.append(message)
        return message

    # -- convenience -------------------------------------------------------
    def notify_admin(self, subject, body=""):
        return self.send(AUDIENCE_ADMIN, self.admin_address, subject, body)

    def notify_user(self, email, subject, body=""):
        return self.send(AUDIENCE_USER, email, subject, body)

    def to_user(self, email=None):
        return [m for m in self.outbox if m.audience == AUDIENCE_USER
                and (email is None or m.recipient == email)]

    def to_admin(self):
        return [m for m in self.outbox if m.audience == AUDIENCE_ADMIN]


class NotificationPolicy:
    """Implements the per-event audience rules."""

    def __init__(self, mailer: Mailer, db):
        self.mailer = mailer
        self.db = db

    def _profile(self, simulation):
        from .models import UserProfile
        try:
            return UserProfile.objects.using(self.db).get(
                user_id=simulation.owner_id)
        except UserProfile.DoesNotExist:
            return None

    def on_transition(self, simulation, old_state, new_state):
        profile = self._profile(simulation)
        owner = simulation.owner
        if new_state == "DONE":
            if profile is None or profile.notify_on_completion \
                    or profile.notify_each_transition:
                self.mailer.notify_user(
                    owner.email,
                    f"AMP simulation #{simulation.pk} complete",
                    f"Your {simulation.kind} run for "
                    f"{simulation.star.name} has completed and its "
                    f"results are available on the website.")
        elif profile is not None and profile.notify_each_transition:
            self.mailer.notify_user(
                owner.email,
                f"AMP simulation #{simulation.pk}: {new_state}",
                f"Your simulation moved from {old_state} to {new_state}.")

    def on_transient(self, simulation, detail):
        # Administrators only; the user-visible surface is the plain-text
        # status message on the simulation row, set by the workflow.
        self.mailer.notify_admin(
            f"Transient on simulation #{simulation.pk}",
            detail)

    def on_budget_exhausted(self, simulation, operation, attempts,
                            detail):
        """A transient stopped being silent: the retry budget is spent.

        Administrators get the full grid detail (including the
        copy-pasteable command line); the user-facing surface is the
        hold notification that follows, which carries no jargon.
        """
        self.mailer.notify_admin(
            f"Retry budget exhausted on simulation #{simulation.pk} "
            f"({operation} × {attempts})", detail)

    def on_hold(self, simulation, reason, category="model"):
        if category == "resource":
            self.mailer.notify_admin(
                f"Simulation #{simulation.pk} HELD: resource "
                f"unavailable", reason)
            self.mailer.notify_user(
                simulation.owner.email,
                f"AMP simulation #{simulation.pk} is paused",
                "The computing facility running your simulation has "
                "been unavailable for an extended period.  Your "
                "simulation is paused and will resume automatically "
                "once the facility recovers; no action is needed from "
                "you.")
            return
        self.mailer.notify_admin(
            f"Simulation #{simulation.pk} HELD: model failure", reason)
        self.mailer.notify_user(
            simulation.owner.email,
            f"AMP simulation #{simulation.pk} needs attention",
            "Your simulation encountered a problem during model "
            "processing.  The gateway administrators have been notified "
            "and will resume it shortly; no action is needed from you.")

    def on_breaker_transition(self, event):
        """Administrators track resource health transitions."""
        self.mailer.notify_admin(
            f"Resource {event.resource} circuit {event.to_state} "
            f"(was {event.from_state})", event.reason)

    def on_auto_resume(self, simulation):
        self.mailer.notify_admin(
            f"Simulation #{simulation.pk} auto-resumed",
            f"{simulation.machine_name} recovered; the paused "
            f"simulation re-entered {simulation.state}.")
