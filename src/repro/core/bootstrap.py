"""Wire a complete in-process AMP deployment (Figure 2).

One :class:`AMPDeployment` assembles every component of the paper's
architecture with the separations intact:

- a shared database with three role-scoped connections,
- the public **portal** web application (webstack) using the portal role
  — no grid objects are ever handed to it,
- the **GridAMP daemon** using the daemon role, holding the community
  credential and the command-line grid clients,
- the **grid fabric**: GRAM/GridFTP services fronting simulated TeraGrid
  resources with the AMP runtime deployed,
- notifications, catalog seeds, allocations, and the external monitor.

Everything shares one virtual clock, so examples/tests/benches drive
weeks of gateway operation in milliseconds.
"""

from __future__ import annotations

from ..grid.breaker import BreakerRegistry
from ..grid.clients import GridClients
from ..grid.fabric import build_fabric
from ..hpc.machines import TABLE1_MACHINES, DISPLAY_NAMES
from ..hpc.simclock import SimClock
from ..obs import Observability
from ..webstack.auth import create_superuser, create_user
from ..webstack.orm import (DeploymentDatabases, ReplicaRouter, bind,
                            create_all)
from .catalog import SimbadService, StarCatalog
from .daemon import ExternalMonitor, GridAMPDaemon
from .models import (ALL_MODELS, AllocationRecord, MachineRecord,
                     SubmitAuthorization, UserProfile)
from .notifications import Mailer
from .remote import deploy_amp
from .security import build_role_registry

DEFAULT_PROJECT = "TG-AST090056"


class AMPDeployment:
    def __init__(self, *, machines=None, su_grant=5_000_000.0,
                 seed_catalog=True, observability=True,
                 placement_policy="least-wait", database_uri=None,
                 routed_db=False, db_replicas=2, slow_statement_s=None):
        self.machines = list(machines or TABLE1_MACHINES)
        self.machine_specs = {m.name: m for m in self.machines}
        self.placement_policy = placement_policy
        self.clock = SimClock()

        # One observability facade for every layer: metrics registry,
        # tracer, and structured event log, all on the shared sim clock.
        # ``observability=False`` swaps in the no-op variant (the
        # overhead bench's uninstrumented baseline); event subscribers
        # (breaker-transition notifications) run either way.
        self.obs = Observability(self.clock, enabled=observability)

        # Shared database, role-scoped connections.  ``database_uri``
        # points several deployments (e.g. prefork worker processes)
        # at one file-backed store; schema creation, catalog seeding,
        # and machine registration are all idempotent, so opening an
        # already-populated database loads rows instead of
        # duplicating them.  ``routed_db`` swaps the portal and daemon
        # connections for :class:`ReplicaRouter` topologies (WAL mode
        # on file-backed stores): reads fan out over ``db_replicas``
        # read-only reader connections while writes funnel through one
        # gated primary.
        self.databases = DeploymentDatabases(build_role_registry(),
                                             uri=database_uri,
                                             routed=routed_db,
                                             replicas=db_replicas,
                                             clock=self.clock)
        create_all(ALL_MODELS, self.databases.admin)
        bind(ALL_MODELS, self.databases.admin)
        self._observe_databases(slow_statement_s=slow_statement_s)

        # Grid fabric + AMP runtime on every resource.
        self.fabric = build_fabric(self.machines, self.clock)
        for name in self.fabric.resource_names():
            deploy_amp(self.fabric.resource(name))

        # The daemon host: clients + credential live here only.  The
        # breaker registry rides with the clients so every command the
        # daemon shells out is health-checked per resource.
        self.breakers = BreakerRegistry(self.clock, obs=self.obs)
        self.clients = GridClients(self.fabric, gateway_name="AMP",
                                   breakers=self.breakers, obs=self.obs)
        self.mailer = Mailer(self.clock)
        self.daemon = GridAMPDaemon(self.databases.daemon, self.clients,
                                    self.clock, self.mailer,
                                    self.machine_specs, obs=self.obs,
                                    placement_policy=placement_policy)
        self.monitor = ExternalMonitor(self.daemon, self.mailer,
                                       clock=self.clock, obs=self.obs)

        #: Fleet slots (``start_fleet``): index -> daemon or None
        #: (killed).  Empty until a fleet is started.
        self.fleet = {}
        self.fleet_n_slices = 0
        self.fleet_lease_ttl_s = 0.0

        # Catalog (portal-side service, portal role).
        self.simbad = SimbadService()
        self.catalog = StarCatalog(self.databases.portal, self.simbad)
        if seed_catalog:
            self.catalog.seed()

        # Back-end registry rows (admin-managed).
        self._register_machines(su_grant)

        self.portal_app = None   # built lazily by build_portal()

    # ------------------------------------------------------------------
    def _observe_databases(self, *, slow_statement_s=None):
        """Per-role query counters: the three "servers" become visible.

        Each role connection reports every executed statement into
        ``db_queries_total{role,operation}`` — the portal's and daemon's
        round-trip budgets, continuously measured rather than only
        asserted in tests.  Routed roles additionally report every
        routing decision (``db_statements_total{role,route}`` and the
        ``db_replica_lag_statements`` staleness gauge; per-statement
        ``db.router.route`` events when the router's ``trace_routes``
        flag is on).  ``slow_statement_s`` arms the slow-statement log:
        statements over the threshold emit ``db.slow_statement`` events
        carrying the placeholder SQL (parameter values are never
        interpolated into it, so nothing sensitive leaks) and count
        into ``db_slow_statements_total{role}``.
        """
        if not self.obs.enabled:
            return
        family = self.obs.metrics.counter(
            "db_queries_total",
            help="ORM statements by connection role and operation")
        routed = [role for role in ("admin", "portal", "daemon")
                  if isinstance(getattr(self.databases, role),
                                ReplicaRouter)]
        route_family = lag_gauge = None
        if routed:
            route_family = self.obs.metrics.counter(
                "db_statements_total",
                help="Routed ORM statements by role and route "
                     "(primary|replica)")
            lag_gauge = self.obs.metrics.gauge(
                "db_replica_lag_statements",
                help="Write statements committed since the replica "
                     "reader serving the latest read last took a "
                     "snapshot")
        slow_family = None
        if slow_statement_s is not None:
            slow_family = self.obs.metrics.counter(
                "db_slow_statements_total",
                help="Statements slower than the slow-statement "
                     "threshold, by role")
        for role in ("admin", "portal", "daemon"):
            db = getattr(self.databases, role)
            db.on_execute = (
                lambda operation, table, _role=role:
                family.labels(role=_role, operation=operation).inc())
            if isinstance(db, ReplicaRouter):
                def on_route(operation, table, route, lag,
                             _role=role, _db=db):
                    route_family.labels(role=_role, route=route).inc()
                    if route == "replica":
                        lag_gauge.labels(role=_role).set(lag)
                    if _db.trace_routes:
                        self.obs.events.emit(
                            "db.router.route", role=_role,
                            operation=operation, table=table,
                            route=route, replica_lag=lag)
                db.on_route = on_route
            if slow_statement_s is not None:
                db.slow_statement_s = float(slow_statement_s)

                def on_slow(sql, duration_s, operation, table,
                            _role=role):
                    slow_family.labels(role=_role).inc()
                    self.obs.events.emit(
                        "db.slow_statement", role=_role, sql=sql,
                        duration_s=duration_s, operation=operation,
                        table=table,
                        threshold_s=float(slow_statement_s))
                db.on_slow_statement = on_slow

    # ------------------------------------------------------------------
    def _register_machines(self, su_grant):
        """Ensure the back-end registry rows exist (idempotent).

        A deployment opening an already-seeded shared database — a
        prefork worker after the supervisor created it — loads the
        existing machine and allocation rows instead of inserting
        duplicates.
        """
        admin = self.databases.admin
        self.machine_records = {}
        self.allocations = {}
        existing = {record.name: record
                    for record in MachineRecord.objects.using(admin)}
        existing_allocations = {
            allocation.machine_id: allocation
            for allocation in AllocationRecord.objects.using(
                admin).filter(project=DEFAULT_PROJECT)}
        for machine in self.machines:
            record = existing.get(machine.name)
            if record is None:
                record = MachineRecord(
                    name=machine.name,
                    display_name=DISPLAY_NAMES.get(machine.name,
                                                   machine.name.title()),
                    site=machine.site, enabled=True,
                    backend=getattr(machine, "backend", "gram"),
                    default_walltime_s=min(6 * 3600.0,
                                           machine.max_walltime_s))
                record.save(db=admin)
            self.machine_records[machine.name] = record
            allocation = existing_allocations.get(record.pk)
            if allocation is None:
                allocation = AllocationRecord(
                    project=DEFAULT_PROJECT, machine_id=record.pk,
                    su_granted=su_grant)
                allocation.save(db=admin)
            self.allocations[machine.name] = allocation

    # ------------------------------------------------------------------
    def create_astronomer(self, username, email=None, password="pw",
                          machines=None, *, approve=True,
                          notify_on_completion=True,
                          notify_each_transition=False):
        """Create an approved gateway user authorized on *machines*."""
        admin = self.databases.admin
        user = create_user(admin, username, email or f"{username}@ucar.edu",
                           password, is_active=approve)
        profile = UserProfile(
            user_id=user.pk, institution="NCAR",
            provenance={"requested_via": "portal",
                        "approved_by": "gateway-admin"},
            notify_on_completion=notify_on_completion,
            notify_each_transition=notify_each_transition)
        profile.save(db=admin)
        for name in (machines or self.machine_specs):
            auth = SubmitAuthorization(
                user_id=user.pk,
                machine_id=self.machine_records[name].pk,
                allocation_id=self.allocations[name].pk, active=True)
            auth.save(db=admin)
        return user

    def create_admin(self, username="gateway-admin", password="adminpw"):
        return create_superuser(self.databases.admin, username,
                                f"{username}@ucar.edu", password)

    # ------------------------------------------------------------------
    def build_portal(self, *, debug=False, serve=None):
        """Construct (once) the public portal web application.

        ``serve`` enables the serving tier (``True`` or a
        :class:`~repro.serve.ServeConfig`); the default ``None`` keeps
        the bare pipeline.  The first call's configuration wins — the
        app is cached.
        """
        if self.portal_app is None:
            from .portal.site import build_portal_app
            self.portal_app = build_portal_app(self, debug=debug,
                                               serve=serve)
        return self.portal_app

    @property
    def serve_cache(self):
        """The portal's response cache, when the serving tier is on."""
        return getattr(self.portal_app, "serve_cache", None)

    def run_daemon_until_idle(self, *, poll_interval_s=300.0,
                              max_polls=100_000):
        return self.daemon.run(poll_interval_s=poll_interval_s,
                               max_polls=max_polls)

    # ------------------------------------------------------------------
    def restart_daemon(self):
        """Replace the daemon process after a crash (kill → new boot).

        Everything host-local to the dead process is rebuilt from
        scratch — breaker registry, grid clients (and with them the
        credential cache), workflows, retry tracker, monitor — while
        everything durable (database, fabric, observability store,
        mailer) carries over, exactly the split a real daemon bounce
        has.  The new :class:`GridAMPDaemon` runs its reconciliation
        sweep in ``__init__``; the dead process's event-log subscriber
        is detached first so notifications don't double-deliver.
        """
        old = self.daemon
        self.obs.events.unsubscribe("breaker.transition",
                                    old._on_breaker_event)
        self.breakers = BreakerRegistry(self.clock, obs=self.obs)
        self.clients = GridClients(self.fabric, gateway_name="AMP",
                                   breakers=self.breakers, obs=self.obs)
        self.daemon = GridAMPDaemon(self.databases.daemon, self.clients,
                                    self.clock, self.mailer,
                                    self.machine_specs, obs=self.obs,
                                    placement_policy=self.placement_policy)
        self.monitor = ExternalMonitor(self.daemon, self.mailer,
                                       clock=self.clock, obs=self.obs)
        return self.daemon

    # ------------------------------------------------------------------
    # Daemon fleet: lease-partitioned instances (kill/restart harness)
    # ------------------------------------------------------------------
    def start_fleet(self, n, *, n_slices=None, lease_ttl_s=7200.0):
        """Boot *n* lease-partitioned daemon instances.

        Each instance is a separate "process": its own breaker
        registry (tagged with its instance id), grid clients, retry
        tracker, and lease manager — while the database, fabric,
        clock, mailer, and observability store are the shared durable
        world.  The pre-existing singleton daemon is retired (its
        event subscriber detached) so notifications don't
        double-deliver; drive the fleet with ``poll_fleet_once`` /
        ``run_fleet_until_idle``.
        """
        self.obs.events.unsubscribe("breaker.transition",
                                    self.daemon._on_breaker_event)
        self.fleet_n_slices = int(n_slices or n)
        self.fleet_lease_ttl_s = float(lease_ttl_s)
        self.fleet = {}
        for index in range(n):
            self._spawn_fleet_daemon(index)
        return [self.fleet[index] for index in range(n)]

    def _spawn_fleet_daemon(self, index):
        from .leases import LeaseManager
        instance = f"daemon-{index}"
        breakers = BreakerRegistry(self.clock, obs=self.obs,
                                   origin=instance)
        clients = GridClients(self.fabric, gateway_name="AMP",
                              breakers=breakers, obs=self.obs)
        leases = LeaseManager(self.databases.daemon, self.clock,
                              owner=instance,
                              n_slices=self.fleet_n_slices,
                              ttl_s=self.fleet_lease_ttl_s,
                              obs=self.obs, fabric=self.fabric)
        daemon = GridAMPDaemon(self.databases.daemon, clients,
                               self.clock, self.mailer,
                               self.machine_specs, obs=self.obs,
                               placement_policy=self.placement_policy,
                               instance_id=instance, leases=leases)
        self.fleet[index] = daemon
        return daemon

    def kill_daemon(self, index):
        """Simulate ``kill -9`` of one fleet member.

        All process-local state vanishes (the slot goes to ``None``);
        the instance's leases stay in the database until they expire,
        at which point surviving peers steal the slices and adopt the
        dead owner's uncommitted intents.  Returns the dead daemon
        (tests inspect its in-memory state post-mortem).
        """
        daemon = self.fleet.get(index)
        if daemon is None:
            return None
        self.obs.events.unsubscribe("breaker.transition",
                                    daemon._on_breaker_event)
        self.fleet[index] = None
        return daemon

    def restart_fleet_daemon(self, index):
        """Boot a replacement process for one fleet slot.

        The replacement carries the same instance id, so it may
        *reclaim* its dead incarnation's unexpired leases immediately
        (bumping the fencing token) and replay their intents through
        the takeover path.
        """
        if self.fleet.get(index) is not None:
            self.kill_daemon(index)
        return self._spawn_fleet_daemon(index)

    def poll_fleet_once(self, *, on_crash="kill"):
        """One fleet round: every live instance polls, in index order.

        A :class:`~repro.grid.faults.DaemonCrash` fired by the fault
        harness mid-poll kills that instance (slot → ``None``) and the
        round continues with its peers — the in-process analogue of a
        process dying while the rest of the fleet keeps running.  Pass
        ``on_crash="raise"`` to propagate instead.  Crashed indexes
        land in ``fleet_crashes``.
        """
        from ..grid.faults import DaemonCrash
        transitions = 0
        crashed = []
        for index in sorted(self.fleet):
            daemon = self.fleet[index]
            if daemon is None:
                continue
            try:
                transitions += daemon.poll_once()
            except DaemonCrash:
                if on_crash != "kill":
                    raise
                self.kill_daemon(index)
                crashed.append(index)
        self.fleet_crashes = crashed
        return transitions

    def run_fleet_until_idle(self, *, poll_interval_s=300.0,
                             max_rounds=100_000, on_crash="kill"):
        """Drive fleet rounds in virtual time until no work remains.

        Stops when every live instance agrees there is nothing left
        (the pending count is a global database read, identical from
        any instance) or when the whole fleet is dead.  Returns the
        number of rounds driven.
        """
        rounds = 0
        while rounds < max_rounds:
            alive = [d for d in self.fleet.values() if d is not None]
            if not alive or alive[0].pending_count() == 0:
                break
            self.clock.advance(poll_interval_s)
            self.poll_fleet_once(on_crash=on_crash)
            rounds += 1
        return rounds

    def close(self):
        cache = self.serve_cache
        if cache is not None:
            cache.close()   # detach ORM signal receivers
        self.databases.close()


def build_prefork_app_factory(database_path, cache_path, *,
                              db_fault_trigger=None,
                              health_recovery_s=None,
                              watchdog_s=None):
    """Worker app factory for real-HTTP prefork serving.

    Creates and seeds one file-backed deployment database up front —
    in the supervisor, before any fork — then returns an
    ``app_factory(index)`` whose per-worker deployments all open *that*
    database.  Every worker therefore reads and writes the same rows
    (a signup or campaign POST handled by one worker is immediately
    visible through every other), while each still opens its own
    SQLite connections after the fork, so none crosses a process
    boundary.  The serving tier is measured against a
    :class:`~repro.serve.WallClock`: a worker's private SimClock never
    advances while serving real HTTP, which would freeze cache TTLs
    and rate-limit refills.

    Parameters
    ----------
    db_fault_trigger:
        Optional path of a *trigger file*: while it exists, every
        worker's database statements fail as if the database were
        down (the cross-process chaos switch the overload smoke test
        and the CI readiness-flip check use).
    health_recovery_s:
        Optional override for the health tracker's recovery quiet
        period (short in smoke tests so readiness flips back fast).
    watchdog_s:
        The server's per-request watchdog, when one is armed: each
        worker's deadline budgets (including the maximum a client may
        request via ``X-Request-Budget-Ms``) are clamped below it, so
        an over-budget request always gets its clean 504 before the
        watchdog hard-kills the worker mid-response.
    """
    AMPDeployment(database_uri=database_path).close()

    def app_factory(index):
        from ..serve import (DbFaultInjector, DeadlinePolicy,
                             ServeConfig, SqliteSharedStore, WallClock)
        deployment = AMPDeployment(database_uri=database_path)
        clock = WallClock()
        db_fault = None
        if db_fault_trigger is not None:
            db_fault = DbFaultInjector(clock,
                                       trigger_file=db_fault_trigger)
        return deployment.build_portal(serve=ServeConfig(
            clock=clock,
            shared_store=SqliteSharedStore(cache_path),
            worker_index=index,
            db_fault=db_fault,
            deadline_policy=DeadlinePolicy().clamped_to_watchdog(
                watchdog_s),
            health_recovery_s=health_recovery_s))

    return app_factory
