"""The GridAMP workflow manager base class.

This is the paper's Listing 1 made executable.  The workflow is "a list
of stages with function pointers that must return [True] to proceed to
the next state":

    self.workflow = {
        'QUEUED':  ([check_queued_sim, submit_pre_job],             'PREJOB'),
        'PREJOB':  ([check_pre_job,   submit_work_job],             'RUNNING'),
        'RUNNING': ([check_work_job,  submit_post_job],             'POSTJOB'),
        'POSTJOB': ([check_post_job,  postprocess, submit_cleanup], 'CLEANUP'),
        'CLEANUP': ([check_cleanup,   close_simulation],            'DONE'),
    }

"If the job is in a particular state, all of the functions in the
subsequent list are called.  If all return True, then the job is set to
the indicated next state."

The base class owns everything generic — job queuing, stage-in,
stage-out, transient handling, hold/resume, accounting — while derived
classes implement only GRAM job generation and model postprocessing
("the derived classes are very small and contain only model-specific
execution and postprocessing code").
"""

from __future__ import annotations

import posixpath
import re

from ...grid.gridftp import checksum
from ...grid.retry import RetryPolicy, RetryTracker, classify_operation
from ...grid.rsl import fork_spec, format_rsl
from ...hpc.accounting import cpu_hours
from ..models import (GridJobRecord, HOLD_MODEL, HOLD_RESOURCE,
                      JOB_CLEANUP, JOB_POSTJOB, JOB_PREJOB,
                      JOURNAL_ABORTED, JOURNAL_COMMITTED, JOURNAL_INTENT,
                      JOURNAL_OP_STAGE_IN, JOURNAL_OP_STAGE_OUT,
                      JOURNAL_OP_SUBMIT, MACHINE_AUTO,
                      OUTCOME_COMMITTED, OUTCOME_FAILED,
                      OUTCOME_TRANSIENT, OperationRecord, SIM_DONE,
                      SIM_HOLD, SubmitAuthorization, idempotency_key)
from ..remote import CLEANUP_SH, POSTJOB_SH, PREJOB_SH, output_tarball_path
from ..staging import StagingError

#: User-visible plain-text message for transient conditions.  Grid
#: jargon is forbidden here (the mailer enforces the same rule).
TRANSIENT_MESSAGE = ("The computing facility is temporarily unavailable; "
                     "processing will resume automatically.")

#: User-visible message when the retry budget is exhausted: still no
#: grid jargon, and no implication the user must act.
BUDGET_EXHAUSTED_MESSAGE = (
    "The computing facility has been unavailable for an extended "
    "period.  Your simulation is paused and will resume automatically "
    "once the facility recovers.")


class ModelFailure(Exception):
    """A model-processing failure: the simulation must HOLD (§4.4)."""


class WorkflowManager:
    """Base workflow manager: all routine functionality.

    Parameters
    ----------
    db:
        The daemon's role-scoped database connection.
    clients:
        The :class:`~repro.grid.clients.GridClients` toolkit.
    policy:
        A :class:`~repro.core.notifications.NotificationPolicy`.
    machine_specs:
        ``{name: MachineSpec}`` for walltime and SU arithmetic.
    retry:
        A :class:`~repro.grid.retry.RetryTracker` (shared across the
        daemon's workflows so one policy and one event log cover every
        simulation).  Built privately when omitted.
    obs:
        An :class:`~repro.obs.Observability` facade; state transitions,
        holds, and resumes are emitted as correlation-id-tagged
        structured events and counted.  Built privately when omitted so
        standalone workflow tests stay observable too.
    """

    def __init__(self, db, clients, policy, machine_specs, retry=None,
                 obs=None):
        self.db = db
        self.clients = clients
        self.policy = policy
        self.machine_specs = machine_specs
        self.retry = retry or RetryTracker(RetryPolicy(),
                                           clients.fabric.clock)
        if obs is None:
            from ...obs import Observability
            obs = Observability(clients.fabric.clock)
        self.obs = obs
        #: Simulation pks whose journal holds an unresolved intent (a
        #: crash left an operation that could not yet be proven done or
        #: not-done).  The daemon's reconciliation sweep owns this set;
        #: blocked simulations are frozen until their intent settles.
        self.blocked_sims = set()
        #: The daemon injects its SU ledger so CLEANUP settles the
        #: broker's reservation instead of double-charging; a bare
        #: workflow (no broker) charges the legacy path.
        self.ledger = None
        self.workflow = {
            "QUEUED": ([self.check_queued_sim, self.submit_pre_job],
                       "PREJOB"),
            "PREJOB": ([self.check_pre_job, self.submit_work_job],
                       "RUNNING"),
            "RUNNING": ([self.check_work_job, self.submit_post_job],
                        "POSTJOB"),
            "POSTJOB": ([self.check_post_job, self.postprocess,
                         self.submit_cleanup], "CLEANUP"),
            "CLEANUP": ([self.check_cleanup, self.close_simulation],
                        "DONE"),
        }

    # ------------------------------------------------------------------
    # The engine
    # ------------------------------------------------------------------
    def advance(self, simulation):
        """Run the current state's function list; transition if all pass.

        Returns True when a state transition happened.
        """
        if simulation.state not in self.workflow:
            return False
        if simulation.machine_name == MACHINE_AUTO:
            return False            # awaiting broker placement
        if simulation.pk in self.blocked_sims:
            return False            # unresolved journal intent: frozen
        if not self.retry_due(simulation):
            return False            # backing off after a transient
        functions, next_state = self.workflow[simulation.state]
        try:
            # Every cycle acts under a fresh SAML-attributed proxy for
            # the simulation's owner (proxies are short-lived by design).
            owner = simulation.owner
            refresh = self._grid_call(
                simulation,
                self.clients.ensure_proxy(owner.username, owner.email))
            if refresh is None:
                return False
            for fn in functions:
                if not fn(simulation):
                    return False
        except (ModelFailure, StagingError) as exc:
            self.hold(simulation, str(exc))
            return False
        old_state = simulation.state
        simulation.state = next_state
        simulation.status_message = ""
        simulation.save(db=self.db)
        self.obs.events.emit(
            "sim.transition", simulation=simulation.pk,
            trace_id=simulation.correlation_id,
            from_state=old_state, to_state=next_state,
            machine=simulation.machine_name)
        self.obs.metrics.counter(
            "sim_transitions_total",
            help="Workflow state transitions").labels(
            to_state=next_state).inc()
        self.policy.on_transition(simulation, old_state, next_state)
        return True

    def run_to_completion(self, simulation):
        """Keep advancing while progress is possible (tests/benches)."""
        while simulation.state not in (SIM_DONE, SIM_HOLD):
            if not self.advance(simulation):
                break
        return simulation.state

    # ------------------------------------------------------------------
    # Hold / resume (model failures and exhausted retry budgets)
    # ------------------------------------------------------------------
    def hold(self, simulation, reason, category=HOLD_MODEL):
        simulation.state_before_hold = simulation.state
        simulation.state = SIM_HOLD
        simulation.hold_reason = reason
        simulation.hold_category = category
        simulation.save(db=self.db)
        self.obs.events.emit(
            "sim.hold", simulation=simulation.pk,
            trace_id=simulation.correlation_id,
            from_state=simulation.state_before_hold, category=category,
            reason=reason.splitlines()[0] if reason else "")
        self.obs.metrics.counter(
            "sim_holds_total", help="Simulations held by category"
        ).labels(category=category).inc()
        self.policy.on_hold(simulation, reason, category=category)

    def resume(self, simulation):
        """Release a held simulation (administrator action, or the
        daemon's automatic recovery of resource holds).

        "Once the problem has been resolved, the workflow resumes
        automatically" — the state returns to where it held and the next
        daemon poll retries the failed step.  The retry bookkeeping is
        cleared too: a resumed simulation starts with a *fresh* budget,
        otherwise one attempt after resume would immediately re-exhaust
        it.
        """
        if simulation.state != SIM_HOLD:
            raise ValueError(
                f"Simulation #{simulation.pk} is not held")
        simulation.state = simulation.state_before_hold or "QUEUED"
        simulation.state_before_hold = ""
        simulation.hold_reason = ""
        simulation.hold_category = ""
        simulation.retry_counts = None
        simulation.retry_not_before = 0.0
        simulation.save(db=self.db)
        self.obs.events.emit(
            "sim.resume", simulation=simulation.pk,
            trace_id=simulation.correlation_id,
            to_state=simulation.state)

    # ------------------------------------------------------------------
    # Grid-call plumbing: transient vs permanent classification, retry
    # budgets, and backoff
    # ------------------------------------------------------------------
    def retry_due(self, simulation):
        """False while the simulation is inside its backoff window."""
        not_before = simulation.retry_not_before or 0.0
        return self.retry.clock.now + 1e-9 >= not_before

    def _grid_call(self, simulation, result):
        """Interpret a command-line result.

        OK → the result (and the operation's consecutive-failure count
        resets).  Transient → burn one unit of the per-simulation retry
        budget, schedule the next attempt with exponential backoff, tell
        the administrators (with the copy-pasteable command line), and
        return None so the caller retries once the backoff elapses; an
        exhausted budget escalates to HOLD with a user-readable reason.
        Permanent → ModelFailure (→ HOLD; administrators debug
        interactively).
        """
        operation = classify_operation(result.argv)
        if result.ok:
            self._clear_retries(simulation, operation)
            return result
        if result.transient:
            self._record_transient(simulation, operation, result)
            return None
        raise ModelFailure(
            f"command failed: {result.command_line}: {result.stderr}")

    def _clear_retries(self, simulation, operation):
        counts = simulation.retry_counts
        if counts and operation in counts:
            counts = dict(counts)
            del counts[operation]
            simulation.retry_counts = counts or None
            simulation.retry_not_before = 0.0
            simulation.save(db=self.db)

    def _record_transient(self, simulation, operation, result):
        counts = dict(simulation.retry_counts or {})
        attempt = counts.get(operation, 0) + 1
        counts[operation] = attempt
        simulation.retry_counts = counts
        if self.retry.exhausted(attempt):
            # The budget is spent: this is no longer a silent transient.
            self.policy.on_budget_exhausted(
                simulation, operation, attempt,
                f"budget exhausted after {attempt} attempts: "
                f"{result.command_line}\n{result.stderr}")
            self.hold(simulation, BUDGET_EXHAUSTED_MESSAGE,
                      category=HOLD_RESOURCE)
            return
        simulation.retry_not_before = self.retry.next_retry(
            simulation.pk, operation, attempt)
        simulation.status_message = TRANSIENT_MESSAGE
        simulation.save(db=self.db)
        self.policy.on_transient(
            simulation,
            f"retryable (attempt {attempt}/"
            f"{self.retry.policy.max_attempts}): "
            f"{result.command_line}\n{result.stderr}")

    # ------------------------------------------------------------------
    # The operation journal: intent → side effect → commit
    # ------------------------------------------------------------------
    # Every side-effecting grid call (submit, stage-in, stage-out,
    # cancel) is journaled write-ahead: an INTENT row lands in the
    # database *before* the call goes out, and is only marked COMMITTED
    # once the call's consequences (the GridJobRecord, the staged file)
    # are durably recorded too.  A daemon that dies between the two
    # leaves an INTENT row behind; the restart reconciliation sweep
    # queries the fabric to decide — per row — whether the side effect
    # happened (adopt/verify) or provably did not (re-issue).  The
    # idempotency key doubles as the GRAM ``clientTag``, which is what
    # makes orphaned jobs findable after the fact.

    def _crash_check(self, op, when):
        """Fault-harness hook: die here if a CrashPoint is scheduled."""
        schedule = getattr(self.clients.fabric, "crash_schedule", None)
        if schedule is not None:
            schedule.check(op, when)

    def _journal_key(self, simulation, op, phase):
        """Next attempt number and idempotency key for (sim, op, phase).

        The attempt counter is derived from durable journal rows, never
        from in-memory state: a bounced daemon computes the same next
        key the dead one would have, so a re-issue after a crash reuses
        the fabric's view of "attempt N" instead of inventing a fork.
        """
        attempt = OperationRecord.objects.using(self.db).filter(
            simulation_id=simulation.pk, op=op, phase=phase).count() + 1
        return attempt, idempotency_key(simulation.pk, phase, attempt)

    def _journal_open(self, simulation, op, phase, attempt, key, **meta):
        """Write the INTENT row, then honour any pre-call crash point."""
        entry = OperationRecord(
            simulation_id=simulation.pk, op=op, phase=phase,
            attempt=attempt, idempotency_key=key,
            resource=simulation.machine_name, state=JOURNAL_INTENT,
            intent_at=self.retry.clock.now, **meta)
        entry.save(db=self.db)
        self._crash_check(op, "before")
        return entry

    def _journal_settle(self, entry, state, outcome, **updates):
        for name, value in updates.items():
            setattr(entry, name, value)
        entry.state = state
        entry.outcome = outcome
        entry.resolved_at = self.retry.clock.now
        entry.save(db=self.db)
        return entry

    def _journal_classify(self, simulation, entry, raw):
        """Run the usual transient/permanent classification, settling
        the journal entry on the non-OK paths.

        An aborted entry is *settled*: reconciliation never replays it
        (the retry machinery owns what happens next, exactly as it did
        before the journal existed).
        """
        try:
            result = self._grid_call(simulation, raw)
        except ModelFailure as exc:
            self._journal_settle(entry, JOURNAL_ABORTED, OUTCOME_FAILED,
                                 detail=str(exc)[:500])
            raise
        if result is None:
            self._journal_settle(entry, JOURNAL_ABORTED, OUTCOME_TRANSIENT)
            return None
        return result

    @staticmethod
    def _phase_slug(text):
        """A deterministic, key-safe slug for path-derived phases."""
        return re.sub(r"[^A-Za-z0-9]+", "_", text).strip("_")

    # ------------------------------------------------------------------
    # Job-record helpers
    # ------------------------------------------------------------------
    def _jobs(self, simulation, purpose, ga_index=None):
        """Job records for *simulation*, ordered (sequence, id).

        When the daemon loaded the simulation with
        ``prefetch_related("grid_jobs")`` the prefetched set is filtered
        in memory — the poll cycle's per-simulation job checks then cost
        zero round trips.  Returns a list (prefetched) or queryset.
        """
        prefetched = simulation.__dict__.get("_prefetched_objects")
        if prefetched is not None and "grid_jobs" in prefetched:
            jobs = [job for job in prefetched["grid_jobs"]
                    if job.purpose == purpose
                    and (ga_index is None or job.ga_index == ga_index)]
            jobs.sort(key=lambda job: (job.sequence, job.pk))
            return jobs
        qs = GridJobRecord.objects.using(self.db).filter(
            simulation_id=simulation.pk, purpose=purpose)
        if ga_index is not None:
            qs = qs.filter(ga_index=ga_index)
        return qs.order_by("sequence", "id")

    def _latest_job(self, simulation, purpose, ga_index=None):
        jobs = list(self._jobs(simulation, purpose, ga_index))
        return jobs[-1] if jobs else None

    @staticmethod
    def _remember_job(simulation, record):
        """Keep a prefetched grid_jobs set coherent with a new submit."""
        prefetched = simulation.__dict__.get("_prefetched_objects")
        if prefetched is not None and "grid_jobs" in prefetched:
            prefetched["grid_jobs"].append(record)

    def _submit_fork(self, simulation, purpose, executable, arguments=()):
        """Submit a fork-service script and record it."""
        spec = fork_spec(executable,
                         directory=simulation.remote_directory,
                         arguments=list(arguments))
        return self._journaled_submit(simulation, purpose, spec,
                                      service="fork", phase=purpose)

    def _submit_batch(self, simulation, purpose, spec, *, ga_index=0,
                      sequence=0):
        return self._journaled_submit(
            simulation, purpose, spec, service="batch",
            ga_index=ga_index, sequence=sequence,
            phase=f"{purpose}-{ga_index}-{sequence}")

    def _journaled_submit(self, simulation, purpose, spec, *, service,
                          phase, ga_index=0, sequence=0):
        """The single journaled submission path (fork and batch).

        The idempotency key is stamped into the RSL as ``clientTag``
        *before* the intent row is written, so whatever GRAM ends up
        holding is findable by the exact key the journal recorded.
        """
        attempt, key = self._journal_key(simulation, JOURNAL_OP_SUBMIT,
                                         phase)
        spec = dict(spec)
        spec["clientTag"] = key
        rsl_text = format_rsl(spec)
        entry = self._journal_open(
            simulation, JOURNAL_OP_SUBMIT, phase, attempt, key,
            purpose=purpose, ga_index=ga_index, sequence=sequence,
            service=service, rsl=rsl_text)
        raw = self.clients.submit_job(simulation.machine_name, spec,
                                      service=service)
        self._crash_check(JOURNAL_OP_SUBMIT, "after")
        result = self._journal_classify(simulation, entry, raw)
        if result is None:
            return None
        record = GridJobRecord(
            simulation_id=simulation.pk, purpose=purpose,
            ga_index=ga_index, sequence=sequence,
            resource=simulation.machine_name, service=service,
            gram_job_id=int(result.stdout), rsl=rsl_text,
            idempotency_key=key, state="PENDING")
        record.save(db=self.db)
        self._remember_job(simulation, record)
        self._journal_settle(entry, JOURNAL_COMMITTED, OUTCOME_COMMITTED,
                             gram_job_id=record.gram_job_id,
                             job_record_id=record.pk)
        return record

    def _check_job(self, simulation, record, *, label):
        """Generic completion check on a job record (last-known state)."""
        if record is None:
            return False
        if record.state == "DONE":
            return True
        if record.state == "FAILED":
            raise ModelFailure(
                f"{label} job #{record.pk} failed: "
                f"{record.failure_reason or 'unknown'}")
        return False

    def _stage_in(self, simulation, files):
        """Upload regenerated input files; False on transient.

        Each file is journaled with its payload size and digest so a
        restart can re-verify a maybe-partial transfer with one remote
        ``stat`` instead of re-uploading blindly.
        """
        directory = simulation.remote_directory
        for rel_path, content in sorted(files.items()):
            remote_path = posixpath.join(directory, rel_path)
            data = (content.encode("utf-8")
                    if isinstance(content, str) else content)
            phase = f"stagein-{self._phase_slug(rel_path)}"
            attempt, key = self._journal_key(
                simulation, JOURNAL_OP_STAGE_IN, phase)
            entry = self._journal_open(
                simulation, JOURNAL_OP_STAGE_IN, phase, attempt, key,
                remote_path=remote_path, payload_size=len(data),
                payload_digest=checksum(data))
            raw = self.clients.stage_in(simulation.machine_name,
                                        remote_path, content)
            self._crash_check(JOURNAL_OP_STAGE_IN, "after")
            result = self._journal_classify(simulation, entry, raw)
            if result is None:
                return False
            self._journal_settle(entry, JOURNAL_COMMITTED,
                                 OUTCOME_COMMITTED)
        return True

    def _stage_out(self, simulation, remote_path):
        """Download one file; None on transient.

        Downloads are side-effect-free on the fabric, but they are
        journaled anyway: the intent row is what lets reconciliation
        distinguish "crashed mid-download" (harmless, re-issue) from
        "crashed mid-upload" (must verify) without guessing.
        """
        rel = remote_path
        if rel.startswith(simulation.remote_directory):
            rel = rel[len(simulation.remote_directory):]
        phase = f"stageout-{self._phase_slug(rel)}"
        attempt, key = self._journal_key(
            simulation, JOURNAL_OP_STAGE_OUT, phase)
        entry = self._journal_open(
            simulation, JOURNAL_OP_STAGE_OUT, phase, attempt, key,
            remote_path=remote_path)
        raw = self.clients.stage_out(simulation.machine_name, remote_path)
        self._crash_check(JOURNAL_OP_STAGE_OUT, "after")
        result = self._journal_classify(simulation, entry, raw)
        if result is None:
            return None
        self._journal_settle(entry, JOURNAL_COMMITTED, OUTCOME_COMMITTED,
                             payload_size=len(result.data),
                             payload_digest=checksum(result.data))
        return result.data

    def machine_spec(self, simulation):
        try:
            return self.machine_specs[simulation.machine_name]
        except KeyError:
            raise ModelFailure(
                f"Unknown machine {simulation.machine_name!r}")

    # ------------------------------------------------------------------
    # QUEUED
    # ------------------------------------------------------------------
    def check_queued_sim(self, simulation):
        """Verify the owner may run on this machine with SUs remaining."""
        self.machine_spec(simulation)
        auths = SubmitAuthorization.objects.using(self.db).filter(
            user_id=simulation.owner_id, active=True).select_related(
            "machine", "allocation")
        for auth in auths:
            if auth.machine.name == simulation.machine_name:
                if auth.allocation.su_remaining <= 0:
                    raise ModelFailure(
                        f"Allocation {auth.allocation.project} on "
                        f"{simulation.machine_name} is exhausted")
                return True
        raise ModelFailure(
            f"User {simulation.owner_id} is not authorized to submit to "
            f"{simulation.machine_name}")

    def submit_pre_job(self, simulation):
        if self._latest_job(simulation, JOB_PREJOB) is not None:
            return True
        record = self._submit_fork(simulation, JOB_PREJOB, PREJOB_SH,
                                   arguments=self.prejob_arguments(
                                       simulation))
        return record is not None

    # ------------------------------------------------------------------
    # PREJOB
    # ------------------------------------------------------------------
    def check_pre_job(self, simulation):
        record = self._latest_job(simulation, JOB_PREJOB)
        if not self._check_job(simulation, record, label="pre-job"):
            return False
        return self._stage_in(simulation, self.input_files(simulation))

    # ------------------------------------------------------------------
    # POSTJOB / CLEANUP
    # ------------------------------------------------------------------
    def submit_post_job(self, simulation):
        if self._latest_job(simulation, JOB_POSTJOB) is not None:
            return True
        record = self._submit_fork(simulation, JOB_POSTJOB, POSTJOB_SH)
        return record is not None

    def check_post_job(self, simulation):
        record = self._latest_job(simulation, JOB_POSTJOB)
        return self._check_job(simulation, record, label="post-job")

    def submit_cleanup(self, simulation):
        # The tarball must be safely downloaded (postprocess) before the
        # cleanup stage removes the execution environment.
        if self._latest_job(simulation, JOB_CLEANUP) is not None:
            return True
        record = self._submit_fork(simulation, JOB_CLEANUP, CLEANUP_SH)
        return record is not None

    def check_cleanup(self, simulation):
        record = self._latest_job(simulation, JOB_CLEANUP)
        return self._check_job(simulation, record, label="cleanup")

    def close_simulation(self, simulation):
        """Final bookkeeping: charge SUs against the allocation."""
        self._charge_allocation(simulation)
        return True

    def _charge_allocation(self, simulation):
        spec = self.machine_spec(simulation)
        # Metering backends (cloud) bill for what actually ran —
        # provisioning included — and their figure wins over the
        # benchmark-derived estimate used for non-metering substrates.
        metered = self.clients.reported_cost_su(
            simulation.machine_name, simulation.remote_directory)
        if metered is not None:
            sus = float(metered)
        else:
            core_seconds = self.consumed_core_seconds(simulation)
            sus = 0.0
            if core_seconds > 0:
                sus = cpu_hours(1, core_seconds) * spec.su_charge_factor
        # Broker-placed work settles through the ledger (idempotently:
        # a re-run after a crash finds the reservation already settled
        # and charges nothing).  True means the ledger owned it.
        if self.ledger is not None and self.ledger.settle(simulation,
                                                          sus):
            return
        if sus <= 0:
            return
        for auth in SubmitAuthorization.objects.using(self.db).filter(
                user_id=simulation.owner_id, active=True).select_related(
                "machine", "allocation"):
            if auth.machine.name == simulation.machine_name:
                allocation = auth.allocation
                allocation.su_used = allocation.su_used + sus
                allocation.save(db=self.db)
                break

    # ------------------------------------------------------------------
    # Postprocess (shared shell; derived classes interpret)
    # ------------------------------------------------------------------
    def postprocess(self, simulation):
        tarball = self._stage_out(
            simulation, output_tarball_path(simulation.remote_directory))
        if tarball is None:
            return False
        results = self.interpret_results(simulation, tarball)
        simulation.results = results
        simulation.save(db=self.db)
        return True

    # ------------------------------------------------------------------
    # Derived-class interface (model-specific)
    # ------------------------------------------------------------------
    def prejob_arguments(self, simulation):
        return []

    def input_files(self, simulation):
        raise NotImplementedError

    def submit_work_job(self, simulation):
        raise NotImplementedError

    def check_work_job(self, simulation):
        raise NotImplementedError

    def interpret_results(self, simulation, tarball):
        raise NotImplementedError

    def consumed_core_seconds(self, simulation):
        """Core-seconds to charge; derived classes refine."""
        return 0.0
