"""Direct model run workflow (derived class).

"Direct model runs are trivial to configure and execute: they require
five floating-point parameters as input, take 10-15 minutes to execute on
a single processor, and produce a few kilobytes of output."  The derived
class is accordingly tiny: one single-core batch job, then parse
``output.txt`` from the tarball.
"""

from __future__ import annotations

from ...grid.rsl import batch_spec
from ..models import JOB_MODEL, KIND_DIRECT
from ..remote import RUN_MODEL_SH
from ..staging import generate_input_files, interpret_output_tarball
from .base import WorkflowManager


class DirectRunWorkflow(WorkflowManager):
    kind = KIND_DIRECT

    def input_files(self, simulation):
        return generate_input_files(simulation)

    def submit_work_job(self, simulation):
        if self._latest_job(simulation, JOB_MODEL) is not None:
            return True
        spec = batch_spec(
            RUN_MODEL_SH, count=1,
            max_wall_time_s=self.machine_spec(simulation).max_walltime_s,
            directory=simulation.remote_directory)
        record = self._submit_batch(simulation, JOB_MODEL, spec)
        return record is not None

    def check_work_job(self, simulation):
        record = self._latest_job(simulation, JOB_MODEL)
        return self._check_job(simulation, record, label="model")

    def interpret_results(self, simulation, tarball):
        return interpret_output_tarball(tarball, KIND_DIRECT)

    def consumed_core_seconds(self, simulation):
        # One core for roughly the benchmark time; the few minutes of a
        # direct run are charged at the machine's benchmark estimate.
        return self.machine_spec(simulation).stellar_benchmark_s
