"""Optimization run workflow (derived class) — the Figure 1 ensemble.

The work phase manages, per the paper §2:

- N independent GA runs in parallel (default 4), each a *chain* of
  sequential batch jobs: a job runs until its walltime budget would be
  exceeded, stages out a restart/progress file, and the daemon submits a
  continuation job once the prior job has finished;
- when every GA run reaches its iteration target, one solution-evaluation
  batch job forward-models the ensemble best at finer granularity.

Interpreting the partial progress files between continuation jobs is "the
most complex portion of the workflow" — the logic lives in
``check_work_job`` below.
"""

from __future__ import annotations

import posixpath

from ...grid.rsl import batch_spec
from ..models import (JOB_GA, JOB_SOLUTION, JOURNAL_COMMITTED,
                      JOURNAL_OP_CANCEL, KIND_OPTIMIZATION,
                      OUTCOME_COMMITTED)
from ..remote import RUN_GA_SH, SOLUTION_SH
from ..staging import (generate_input_files, interpret_output_tarball,
                       interpret_progress)
from .base import ModelFailure, WorkflowManager


class OptimizationWorkflow(WorkflowManager):
    kind = KIND_OPTIMIZATION

    # ------------------------------------------------------------------
    def _config(self, simulation):
        config = simulation.config or {}
        return {
            "n_ga_runs": int(config.get("n_ga_runs", 4)),
            "iterations": int(config.get("iterations", 200)),
            "population_size": int(config.get("population_size", 126)),
            "processors": int(config.get("processors", 128)),
            "walltime_s": float(
                config.get("walltime_s",
                           self.machine_spec(simulation).max_walltime_s)),
            # §6 future work, implemented: submit the whole continuation
            # chain up front with scheduler dependencies.
            "use_chaining": bool(config.get("use_chaining", False)),
        }

    def _estimated_chain_length(self, simulation, cfg):
        """Jobs per GA from the allocation-request arithmetic: one
        iteration costs at most ~1 benchmark time, a job fits
        ``0.96 × walltime`` of iterations, plus one job of slack."""
        import math
        spec = self.machine_spec(simulation)
        budget = cfg["walltime_s"] * 0.96 - 120.0
        per_job = max(int(budget // spec.stellar_benchmark_s), 1)
        return math.ceil(cfg["iterations"] / per_job) + 1

    def prejob_arguments(self, simulation):
        return [f"n_ga={self._config(simulation)['n_ga_runs']}"]

    def input_files(self, simulation):
        observation = simulation.observation
        return generate_input_files(simulation, observation)

    # ------------------------------------------------------------------
    def _ga_spec(self, simulation, ga_index, depends_on=None):
        cfg = self._config(simulation)
        walltime = min(cfg["walltime_s"],
                       self.machine_spec(simulation).max_walltime_s)
        spec = batch_spec(
            RUN_GA_SH, count=cfg["processors"],
            max_wall_time_s=walltime,
            directory=simulation.remote_directory,
            arguments=[f"ga={ga_index}", f"walltime={walltime:.0f}"])
        if depends_on is not None:
            spec["dependsOn"] = str(depends_on)
        return spec

    def submit_work_job(self, simulation):
        """Launch every GA run: one first segment each, or — with
        chaining enabled — the whole dependency chain up front, so
        continuations queue while their predecessors run (§6)."""
        cfg = self._config(simulation)
        chain_length = self._estimated_chain_length(simulation, cfg) \
            if cfg["use_chaining"] else 1
        for ga_index in range(cfg["n_ga_runs"]):
            existing = self._latest_job(simulation, JOB_GA, ga_index)
            if existing is not None:
                continue
            previous_gram = None
            for sequence in range(chain_length):
                record = self._submit_batch(
                    simulation, JOB_GA,
                    self._ga_spec(simulation, ga_index,
                                  depends_on=previous_gram),
                    ga_index=ga_index, sequence=sequence)
                if record is None:
                    return False
                previous_gram = record.gram_job_id
        return True

    # ------------------------------------------------------------------
    def check_work_job(self, simulation):
        """Propagate GA chains; then run the solution evaluation."""
        cfg = self._config(simulation)
        all_finished = True
        for ga_index in range(cfg["n_ga_runs"]):
            state = self._advance_ga_chain(simulation, ga_index)
            if state != "finished":
                all_finished = False
        if not all_finished:
            return False
        return self._check_solution_job(simulation)

    #: failure_reason marker for chain jobs the gateway itself revoked.
    _SURPLUS = "superfluous chained job cancelled by gateway"

    def _advance_ga_chain(self, simulation, ga_index):
        """One GA run's chain: 'running' | 'finished' (or raises).

        Handles both submission strategies: sequential (submit the next
        continuation when the prior job finishes) and chained (the whole
        chain was pre-submitted with dependencies; surplus jobs are
        revoked once the GA reaches its target).
        """
        jobs = list(self._jobs(simulation, JOB_GA, ga_index))
        if not jobs:
            # Transient hit during submit_work_job; resubmit now.
            self._submit_batch(
                simulation, JOB_GA, self._ga_spec(simulation, ga_index),
                ga_index=ga_index, sequence=0)
            return "running"
        for job in jobs:
            if job.state == "FAILED" \
                    and self._SURPLUS not in job.failure_reason \
                    and "CANCELLED" not in job.failure_reason:
                raise ModelFailure(
                    f"GA run {ga_index} job #{job.pk} failed: "
                    f"{job.failure_reason or 'unknown'}")
        if not any(job.state == "DONE" for job in jobs):
            return "running"
        progress = self._fetch_progress(simulation, ga_index)
        if progress is None:
            return "running"        # transient while downloading
        if progress["finished"]:
            self._revoke_surplus_jobs(simulation, jobs)
            return "finished"
        if all(job.is_terminal for job in jobs):
            # Chain exhausted before the iteration target: extend it.
            self._submit_batch(
                simulation, JOB_GA, self._ga_spec(simulation, ga_index),
                ga_index=ga_index,
                sequence=max(job.sequence for job in jobs) + 1)
        return "running"

    def _revoke_surplus_jobs(self, simulation, jobs):
        """Cancel pre-submitted chain jobs the finished GA no longer
        needs (the chained-submission analogue of qdel).

        Cancels are journaled like every other side effect: a crash
        between the cancel and the FAILED/_SURPLUS record save would
        otherwise let the next poll read the raw GRAM "cancelled by
        client" reason and mistake the gateway's own revocation for a
        model failure.  Reconciliation finalises the record from the
        intent row instead.
        """
        for job in jobs:
            if job.is_terminal:
                continue
            attempt, key = self._journal_key(
                simulation, JOURNAL_OP_CANCEL, f"cancel-{job.pk}")
            entry = self._journal_open(
                simulation, JOURNAL_OP_CANCEL, f"cancel-{job.pk}",
                attempt, key, purpose=job.purpose,
                gram_job_id=job.gram_job_id, job_record_id=job.pk)
            self.clients.job_cancel(simulation.machine_name,
                                           job.gram_job_id)
            self._crash_check(JOURNAL_OP_CANCEL, "after")
            job.state = "FAILED"
            job.failure_reason = self._SURPLUS
            job.save(db=self.db)
            self._journal_settle(entry, JOURNAL_COMMITTED,
                                 OUTCOME_COMMITTED)

    def _fetch_progress(self, simulation, ga_index):
        """Download and interpret a GA's partial progress file."""
        path = posixpath.join(simulation.remote_directory,
                              f"ga_{ga_index}", "progress.json")
        blob = self._stage_out(simulation, path)
        if blob is None:
            return None
        payload = interpret_progress(blob.decode("utf-8"))
        if payload["ga_index"] != ga_index:
            raise ModelFailure(
                f"Progress file for GA {ga_index} reports index "
                f"{payload['ga_index']}")
        return payload

    def _check_solution_job(self, simulation):
        record = self._latest_job(simulation, JOB_SOLUTION)
        if record is None:
            spec = batch_spec(
                SOLUTION_SH, count=1,
                max_wall_time_s=self.machine_spec(
                    simulation).max_walltime_s,
                directory=simulation.remote_directory)
            self._submit_batch(simulation, JOB_SOLUTION, spec)
            return False
        return self._check_job(simulation, record, label="solution")

    # ------------------------------------------------------------------
    def interpret_results(self, simulation, tarball):
        return interpret_output_tarball(tarball, KIND_OPTIMIZATION)

    def consumed_core_seconds(self, simulation):
        """Charge from the GA progress files' elapsed times."""
        results = simulation.results or {}
        cfg = self._config(simulation)
        total = 0.0
        for payload in (results.get("ga_progress") or {}).values():
            elapsed = payload.get("total_elapsed_s",
                                  payload.get("elapsed_s", 0.0))
            total += float(elapsed) * cfg["processors"]
        return total
