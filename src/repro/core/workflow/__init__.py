"""Workflow state machines (Listing 1) for AMP's two run types."""

from .base import (TRANSIENT_MESSAGE, ModelFailure, WorkflowManager)
from .directrun import DirectRunWorkflow
from .optimization import OptimizationWorkflow

__all__ = ["DirectRunWorkflow", "ModelFailure", "OptimizationWorkflow",
           "TRANSIENT_MESSAGE", "WorkflowManager"]
