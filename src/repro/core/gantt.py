"""Queue-wait vs execution Gantt analysis — the paper's §6 tool.

"We are currently making a graphical tool that plots job wait vs.
execution time on a Gantt chart for each AMP simulation, as well as
calculating aggregate execution wait and run time statistics, in order to
understand the impact of queue wait time on various systems."

This module is that tool: it joins a simulation's grid-job records to the
underlying batch-scheduler timing, renders an ASCII Gantt chart (wait
segments as ``.``, run segments as ``#``), and computes the aggregate
statistics that drive the §6 chaining-vs-sequential experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from .models import GridJobRecord


@dataclass(frozen=True)
class GanttRow:
    label: str
    purpose: str
    ga_index: int
    sequence: int
    submit_time: float
    start_time: float
    end_time: float

    @property
    def wait_s(self):
        return self.start_time - self.submit_time

    @property
    def run_s(self):
        return self.end_time - self.start_time


def simulation_gantt(deployment, simulation):
    """Gantt rows for every *batch* job of one simulation.

    Fork-service stages run instantaneously on the login node and are
    omitted, as in the paper's framing (queue wait only afflicts batch
    jobs).
    """
    rows = []
    records = GridJobRecord.objects.using(
        deployment.databases.admin).filter(
        simulation_id=simulation.pk, service="batch").order_by("id")
    for record in records:
        gram = deployment.fabric.gram(record.resource)
        gram_job = gram.jobs.get(record.gram_job_id)
        if gram_job is None or gram_job.batch_job_id is None:
            continue
        batch = deployment.fabric.resource(
            record.resource).scheduler.jobs.get(gram_job.batch_job_id)
        if batch is None or batch.start_time is None \
                or batch.end_time is None:
            continue
        label = record.purpose if record.purpose != "ga" \
            else f"ga{record.ga_index}.{record.sequence}"
        rows.append(GanttRow(
            label=label, purpose=record.purpose,
            ga_index=record.ga_index, sequence=record.sequence,
            submit_time=batch.submit_time, start_time=batch.start_time,
            end_time=batch.end_time))
    return rows


def aggregate_statistics(rows):
    """The paper's "aggregate execution wait and run time statistics"."""
    if not rows:
        return {"jobs": 0, "total_wait_s": 0.0, "total_run_s": 0.0,
                "mean_wait_s": 0.0, "mean_run_s": 0.0,
                "wait_fraction": 0.0, "makespan_s": 0.0}
    total_wait = sum(r.wait_s for r in rows)
    total_run = sum(r.run_s for r in rows)
    makespan = max(r.end_time for r in rows) \
        - min(r.submit_time for r in rows)
    return {
        "jobs": len(rows),
        "total_wait_s": total_wait,
        "total_run_s": total_run,
        "mean_wait_s": total_wait / len(rows),
        "mean_run_s": total_run / len(rows),
        "wait_fraction": total_wait / max(total_wait + total_run, 1e-9),
        "makespan_s": makespan,
    }


def per_chain_statistics(rows):
    """Cumulative wait per GA chain — the quantity chaining reduces."""
    chains = {}
    for row in rows:
        if row.purpose == "ga":
            chains.setdefault(row.ga_index, []).append(row)
    return {
        index: {
            "jobs": len(chain),
            "cumulative_wait_s": sum(r.wait_s for r in chain),
            "cumulative_run_s": sum(r.run_s for r in chain),
        }
        for index, chain in sorted(chains.items())
    }


def render_ascii(rows, *, width=72):
    """Render the Gantt chart: ``.`` = queued, ``#`` = running."""
    if not rows:
        return "(no batch jobs)"
    t0 = min(r.submit_time for r in rows)
    t1 = max(r.end_time for r in rows)
    span = max(t1 - t0, 1e-9)
    scale = width / span
    label_width = max(len(r.label) for r in rows) + 1
    lines = [f"{'job'.ljust(label_width)}|"
             f"{'t=0h'.ljust(width // 2)}"
             f"{f't={span / 3600.0:.1f}h'.rjust(width // 2)}|"]
    for row in sorted(rows, key=lambda r: (r.submit_time, r.label)):
        offset = int((row.submit_time - t0) * scale)
        wait = max(int(row.wait_s * scale), 0)
        run = max(int(row.run_s * scale), 1)
        bar = (" " * offset + "." * wait + "#" * run)[:width]
        lines.append(f"{row.label.ljust(label_width)}|"
                     f"{bar.ljust(width)}|")
    stats = aggregate_statistics(rows)
    lines.append(
        f"aggregate: {stats['jobs']} jobs, "
        f"wait {stats['total_wait_s'] / 3600.0:.1f} h, "
        f"run {stats['total_run_s'] / 3600.0:.1f} h, "
        f"wait fraction {stats['wait_fraction'] * 100.0:.0f}%")
    return "\n".join(lines)
