"""Durable slice leases: how a fleet of daemons partitions the work.

One :class:`LeaseManager` rides inside each :class:`GridAMPDaemon` and
runs a *sweep* at the top of every poll.  All coordination happens
through :class:`~repro.core.models.LeaseRecord` rows — there is no
peer-to-peer channel between instances, exactly the "coordination in
durable DB state" posture the operation journal and reservation ledger
already take:

1. **presence** — renew this instance's presence row (its durable
   heartbeat).  Live fleet size = owners of unexpired presence rows.
2. **renew** — extend every held slice lease with a conditional update
   (``WHERE owner = me AND fencing_token = remembered``).  A rowcount
   of zero means the lease was stolen while this process stalled: drop
   it immediately and never touch its simulations again.
3. **claim/steal** — while holding fewer than the fair share
   (``ceil(n_slices / live_instances)``), claim unowned or expired
   slices in index order.  The conditional update races on the fencing
   token, so of N contenders exactly one wins; every successful claim
   bumps the token, fencing out any writer still remembering the old
   one.  A freshly booted instance may *reclaim* slices its dead
   incarnation held (same owner id) without waiting for expiry —
   instance names are unique per live process by construction.
4. **rebalance** — when the fleet grows, an instance holding more than
   its fair share releases the surplus (highest slice index first), so
   restarted members regain work without waiting for an expiry.

Safety argument (pinned by the hypothesis state-machine test): a slice
is stolen only after its lease expired, holders renew before acting
and drop the slice on a failed renewal, and every write is fenced by
the token — so at no instant do two instances both hold a *valid*
claim on one slice, and any expired slice is adopted within one sweep
of a live instance having spare fair-share capacity.
"""

from __future__ import annotations

import math

from .models import (LEASE_KIND_PRESENCE, LEASE_KIND_SLICE, LeaseRecord,
                     presence_lease_key, slice_lease_key)


class LeaseManager:
    """Claims, renews, and rebalances slice leases for one instance."""

    def __init__(self, db, clock, *, owner, n_slices, ttl_s=7200.0,
                 obs=None, fabric=None):
        if n_slices < 1:
            raise ValueError("n_slices must be >= 1")
        self.db = db
        self.clock = clock
        self.owner = owner
        self.n_slices = int(n_slices)
        self.ttl_s = float(ttl_s)
        self.obs = obs
        self.fabric = fabric
        #: slice_index -> the fencing token under which we hold it.
        self.held = {}
        self.ensure_slices()
        self._ensure_presence(self.clock.now)

    # ------------------------------------------------------------------
    def held_slices(self):
        return sorted(self.held)

    def slice_filter(self):
        """The ``field__mod`` filter value for this instance's scope."""
        return (self.n_slices, self.held_slices())

    # ------------------------------------------------------------------
    def _crash_check(self, op, when):
        """Fault-harness hook, same contract as the workflow layer's."""
        schedule = getattr(self.fabric, "crash_schedule", None)
        if schedule is not None:
            schedule.check(op, when)

    def _emit(self, kind, **fields):
        if self.obs is not None:
            self.obs.events.emit(kind, owner=self.owner, **fields)

    def _count(self, op):
        if self.obs is not None:
            self.obs.metrics.counter(
                "daemon_lease_operations_total",
                help="Lease protocol operations, by op").labels(
                op=op).inc()

    # ------------------------------------------------------------------
    def ensure_slices(self):
        """Idempotently create the M slice rows for this partition."""
        existing = {
            row.slice_key
            for row in LeaseRecord.objects.using(self.db)
            .filter(kind=LEASE_KIND_SLICE, n_slices=self.n_slices)
            .only("slice_key")}
        missing = [
            LeaseRecord(slice_key=slice_lease_key(index, self.n_slices),
                        kind=LEASE_KIND_SLICE, slice_index=index,
                        n_slices=self.n_slices)
            for index in range(self.n_slices)
            if slice_lease_key(index, self.n_slices) not in existing]
        if missing:
            LeaseRecord.objects.using(self.db).bulk_create(missing)
        return len(missing)

    def _ensure_presence(self, now):
        """Claim or renew this instance's presence row (heartbeat)."""
        updated = LeaseRecord.objects.using(self.db).filter(
            slice_key=presence_lease_key(self.owner)).update(
            owner=self.owner, renewed_at=now,
            expires_at=now + self.ttl_s)
        if not updated:
            row = LeaseRecord(
                slice_key=presence_lease_key(self.owner),
                kind=LEASE_KIND_PRESENCE, owner=self.owner,
                acquired_at=now, renewed_at=now,
                expires_at=now + self.ttl_s)
            row.save(db=self.db)

    # ------------------------------------------------------------------
    def sweep(self):
        """One lease-protocol round; returns ``(acquired, dropped)``.

        *acquired* — slice indexes newly claimed this sweep (the caller
        owes them a takeover reconciliation before acting on them);
        *dropped* — slice indexes no longer held (lost to a steal, or
        released for rebalancing): the caller must forget any per-slice
        in-memory state (blocked simulations) for them.
        """
        now = self.clock.now
        self._ensure_presence(now)
        rows = list(LeaseRecord.objects.using(self.db).order_by("id"))
        slices = {row.slice_index: row for row in rows
                  if row.kind == LEASE_KIND_SLICE
                  and row.n_slices == self.n_slices}

        # -- renew what we hold; a failed CAS means we lost the lease --
        dropped = []
        for index in sorted(self.held):
            row = slices.get(index)
            token = self.held[index]
            self._crash_check("lease_renew", "before")
            renewed = 0
            if row is not None:
                renewed = LeaseRecord.objects.using(self.db).filter(
                    pk=row.pk, owner=self.owner,
                    fencing_token=token).update(
                    renewed_at=now, expires_at=now + self.ttl_s)
            self._crash_check("lease_renew", "after")
            if renewed:
                self._count("renew")
            else:
                del self.held[index]
                dropped.append(index)
                self._count("lost")
                self._emit("daemon.lease.lost", slice=index)

        # -- fair share from live presences ----------------------------
        live = {row.owner for row in rows
                if row.kind == LEASE_KIND_PRESENCE and row.owner
                and row.expires_at > now}
        live.add(self.owner)
        fair = math.ceil(self.n_slices / len(live))

        # -- claim unowned / expired / own-orphaned slices -------------
        acquired = []
        for index in sorted(slices):
            if len(self.held) >= fair:
                break
            if index in self.held:
                continue
            row = slices[index]
            reclaim = row.owner == self.owner
            if not (row.is_claimable(now) or reclaim):
                continue
            token = row.fencing_token + 1
            self._crash_check("lease_claim", "before")
            claimed = LeaseRecord.objects.using(self.db).filter(
                pk=row.pk, fencing_token=row.fencing_token).update(
                owner=self.owner, fencing_token=token,
                acquired_at=now, renewed_at=now,
                expires_at=now + self.ttl_s)
            self._crash_check("lease_claim", "after")
            if not claimed:
                continue                # another contender won the race
            self.held[index] = token
            acquired.append(index)
            stolen_from = row.owner if row.owner != self.owner else ""
            if stolen_from:
                self._count("steal")
                self._emit("daemon.lease.stolen", slice=index,
                           token=token, from_owner=stolen_from)
            else:
                self._count("claim")
                self._emit("daemon.lease.claimed", slice=index,
                           token=token)

        # -- rebalance: release surplus above the fair share -----------
        if len(self.held) > fair:
            for index in sorted(self.held, reverse=True):
                if len(self.held) <= fair:
                    break
                if index in acquired:
                    continue            # never churn a fresh claim
                row = slices.get(index)
                token = self.held.pop(index)
                released = 0
                if row is not None:
                    released = LeaseRecord.objects.using(self.db).filter(
                        pk=row.pk, owner=self.owner,
                        fencing_token=token).update(
                        owner="", expires_at=now)
                dropped.append(index)
                if released:
                    self._count("release")
                    self._emit("daemon.lease.released", slice=index)

        if self.obs is not None:
            self.obs.metrics.gauge(
                "daemon_lease_slices_held",
                help="Work-partition slices held per fleet "
                     "instance").labels(instance=self.owner).set(
                len(self.held))
        return acquired, dropped
