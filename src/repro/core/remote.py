"""The AMP runtime installed on each compute resource.

These are the remote-side pieces the paper describes in §4.3: shell-script
stages run through the GRAM *fork* service (pre-job, post-job, cleanup)
and the science executables run through the *batch* service.  In the real
deployment the science PI installs and maintains these with sudo; here
:func:`deploy_amp` plays that role.

Remote code communicates with the daemon exclusively through files in the
simulation's runtime directory — input text files staged in, restart /
progress / output files staged out — never through shared Python state.
"""

from __future__ import annotations

import json
import posixpath

from ..grid.gram import AppExecution
from ..science.astec.model import (StellarParameters, execution_time_s,
                                   format_output, parse_input_file,
                                   run_astec)
from ..science.mpikaia.fitness import ChiSquareFitness, ObservedStar
from ..science.mpikaia.ga import GeneticAlgorithm
from ..science.mpikaia.parallel import MasterWorkerModel, run_ga_segment
from ..science.pipeline import BOUNDS_LIST

# Executable paths as installed on every resource (CTSS-uniform layout).
PREJOB_SH = "/usr/local/amp/prejob.sh"
RUN_MODEL_SH = "/usr/local/amp/run_model.sh"
RUN_GA_SH = "/usr/local/amp/run_ga.sh"
SOLUTION_SH = "/usr/local/amp/solution.sh"
POSTJOB_SH = "/usr/local/amp/postjob.sh"
CLEANUP_SH = "/usr/local/amp/cleanup.sh"

STATIC_FILES = {
    "static/opacities.dat": "# opacity tables (static input)\n",
    "static/eos.dat": "# equation of state tables (static input)\n",
    "static/atmosphere.dat": "# atmosphere T(tau) relation\n",
}


def output_tarball_path(directory):
    return directory.rstrip("/") + ".output.tar"


# ----------------------------------------------------------------------
# Fork-service scripts
# ----------------------------------------------------------------------

def prejob_script(resource, *, directory, n_ga="0", **_):
    """Create a fresh runtime directory tree with static inputs."""
    fs = resource.filesystem
    if fs.exists(directory):
        fs.rmtree(directory)
    fs.mkdir(directory)
    for rel, content in STATIC_FILES.items():
        fs.mkdir(posixpath.join(directory, posixpath.dirname(rel)))
        fs.write(posixpath.join(directory, rel), content)
    for index in range(int(n_ga)):
        fs.mkdir(posixpath.join(directory, f"ga_{index}"))
    fs.write(posixpath.join(directory, "README"),
             "AMP runtime directory — created by prejob stage\n")
    return True


def postjob_script(resource, *, directory, **_):
    """Consolidate outputs and logs into a single tar file (§4.3)."""
    fs = resource.filesystem
    blob = fs.tar_tree(directory)
    fs.write(output_tarball_path(directory), blob)
    return True


def cleanup_script(resource, *, directory, **_):
    """Remove the execution environment entirely."""
    fs = resource.filesystem
    if fs.exists(directory):
        fs.rmtree(directory)
    tarball = output_tarball_path(directory)
    if fs.exists(tarball):
        fs.delete(tarball)
    return True


# ----------------------------------------------------------------------
# Batch-service applications
# ----------------------------------------------------------------------

def run_model_app(resource, *, directory, orders="10", **_):
    """Direct forward model: read input.txt, write output.txt."""
    fs = resource.filesystem
    params = parse_input_file(
        fs.read_text(posixpath.join(directory, "input.txt")))
    runtime = execution_time_s(params, resource.machine)

    def finish():
        model = run_astec(params, n_orders=int(orders))
        fs.write(posixpath.join(directory, "output.txt"),
                 format_output(model))
        fs.write(posixpath.join(directory, "model.log"),
                 f"model completed in {runtime:.1f} s\n")
    return AppExecution(runtime_s=runtime, on_finish=finish)


def _load_observed_star(fs, directory):
    payload = fs.read_json(posixpath.join(directory, "observations.json"))
    freqs = {int(k): [float(v) for v in vals]
             for k, vals in (payload.get("frequencies") or {}).items()}
    return ObservedStar(
        name=payload.get("name", "target"),
        teff=payload["teff"], teff_err=payload.get("teff_err", 80.0),
        luminosity=payload.get("luminosity"),
        luminosity_err=payload.get("luminosity_err", 0.1),
        delta_nu=payload.get("delta_nu"),
        delta_nu_err=payload.get("delta_nu_err", 1.0),
        d02=payload.get("d02"), d02_err=payload.get("d02_err", 0.6),
        nu_max=payload.get("nu_max"),
        nu_max_err=payload.get("nu_max_err", 60.0),
        frequencies=freqs)


def run_ga_app(resource, *, directory, ga="0", walltime="21600",
               **_):
    """One MPIKAIA batch-job segment of one GA run.

    Reads the GA's restart file if present (a continuation job) or seeds
    a fresh GA; advances until the walltime budget or the iteration
    target; writes the restart file and a progress summary.
    """
    fs = resource.filesystem
    ga_index = int(ga)
    config = fs.read_json(posixpath.join(directory, "config.json"))
    star = _load_observed_star(fs, directory)
    fitness = ChiSquareFitness(star)
    seed = int(config["ga_seeds"][ga_index])
    population = int(config.get("population_size", 126))
    iterations = int(config.get("iterations", 200))
    processors = int(config.get("processors", 128))

    ga_dir = posixpath.join(directory, f"ga_{ga_index}")
    restart_path = posixpath.join(ga_dir, "restart.json")
    if fs.exists(restart_path):
        optimiser = GeneticAlgorithm.from_restart(
            fs.read_text(restart_path), fitness, BOUNDS_LIST,
            population_size=population)
    else:
        optimiser = GeneticAlgorithm(fitness, BOUNDS_LIST,
                                     population_size=population,
                                     seed=seed)
    timing = MasterWorkerModel(resource.machine, processors)
    # The job script reserves ~4% of the walltime for staging/teardown.
    budget = float(walltime) * 0.96
    segment = run_ga_segment(optimiser, timing, walltime_budget_s=budget,
                             target_iterations=iterations)

    def finish():
        progress_path = posixpath.join(ga_dir, "progress.json")
        previous_total = 0.0
        if fs.exists(progress_path):
            previous_total = float(
                fs.read_json(progress_path).get("total_elapsed_s", 0.0))
        fs.write(restart_path, json.dumps(segment.restart_state))
        fs.write_json(progress_path, {
            "total_elapsed_s": previous_total + segment.elapsed_s,
            "ga_index": ga_index,
            "iterations_completed": segment.iterations_completed,
            "target_iterations": iterations,
            "finished": segment.finished,
            "converged": segment.converged,
            "best_parameters": segment.best_parameters,
            "best_fitness": segment.best_fitness,
            "iteration_times": segment.iteration_times,
            "elapsed_s": segment.elapsed_s,
        })
    return AppExecution(runtime_s=segment.elapsed_s, on_finish=finish)


def solution_app(resource, *, directory, orders="14", **_):
    """Solution-detail run: forward-model the ensemble best (Figure 1)."""
    fs = resource.filesystem
    best, best_fitness = None, -1.0
    index = 0
    while fs.exists(posixpath.join(directory, f"ga_{index}")):
        progress_path = posixpath.join(directory, f"ga_{index}",
                                       "progress.json")
        if fs.exists(progress_path):
            progress = fs.read_json(progress_path)
            if progress.get("best_fitness", -1) > best_fitness:
                best_fitness = progress["best_fitness"]
                best = progress["best_parameters"]
        index += 1
    if best is None:
        raise RuntimeError("solution run found no GA progress files")
    params = StellarParameters(*[float(v) for v in best])
    runtime = execution_time_s(params, resource.machine)

    def finish():
        model = run_astec(params, n_orders=int(orders))
        fs.write(posixpath.join(directory, "solution.txt"),
                 format_output(model))
        fs.write_json(posixpath.join(directory, "solution_meta.json"),
                      {"best_fitness": best_fitness,
                       "parameters": best})
    return AppExecution(runtime_s=runtime, on_finish=finish)


def deploy_amp(resource):
    """Install the full AMP runtime on a resource (the PI's sudo step)."""
    resource.fork.install(PREJOB_SH, prejob_script)
    resource.fork.install(POSTJOB_SH, postjob_script)
    resource.fork.install(CLEANUP_SH, cleanup_script)
    resource.install_application(RUN_MODEL_SH, run_model_app)
    resource.install_application(RUN_GA_SH, run_ga_app)
    resource.install_application(SOLUTION_SH, solution_app)
    return resource
