"""Star catalog services: local catalog, Kepler list, SIMBAD fallback.

§4.2: "the process of searching for a star uses AJAX to suggest stars
with results or in the Kepler catalog.  If no stars are in AMP's catalog,
the search is passed to the SIMBAD astronomical database and the target,
if found, is added to the local catalog."
"""

from __future__ import annotations

import re

from ..science.observations import BRIGHT_TARGETS, kepler_input_catalog
from ..webstack.orm import Q
from .models import Star

_HD_RE = re.compile(r"^\s*HD\s*(\d+)\s*$", re.IGNORECASE)
_KIC_RE = re.compile(r"^\s*KIC\s*(\d+)\s*$", re.IGNORECASE)


class SimbadService:
    """In-process stand-in for the SIMBAD astronomical database.

    Resolves star names and HD identifiers against a fixed reference
    catalog.  ``lookups`` counts remote queries so tests can assert the
    portal only falls back when the local catalog misses.
    """

    #: Reference entries: name → (hd_number, ra, dec).
    REFERENCE = {
        "16 Cyg A": (186408, 295.45, 50.52),
        "16 Cyg B": (186427, 295.47, 50.52),
        "Alpha Cen A": (128620, 219.90, -60.83),
        "Alpha Cen B": (128621, 219.91, -60.84),
        "Beta Hydri": (2151, 6.44, -77.25),
        "Mu Arae": (160691, 266.04, -51.83),
        "Tau Ceti": (10700, 26.02, -15.94),
        "18 Sco": (146233, 243.91, -8.37),
        "Eta Boo": (121370, 208.67, 18.40),
        "Procyon": (61421, 114.83, 5.22),
    }

    def __init__(self):
        self.lookups = 0

    def query(self, text):
        """Resolve a free-text identifier; returns a dict or None."""
        self.lookups += 1
        text = text.strip()
        hd_match = _HD_RE.match(text)
        for name, (hd, ra, dec) in self.REFERENCE.items():
            if name.lower() == text.lower() or \
                    (hd_match and int(hd_match.group(1)) == hd):
                return {"name": name, "hd_number": hd,
                        "ra_deg": ra, "dec_deg": dec}
        return None


class StarCatalog:
    """The portal's catalog service over the Star model."""

    def __init__(self, db, simbad: SimbadService = None):
        self.db = db
        self.simbad = simbad or SimbadService()
        self._kepler_names = set(kepler_input_catalog())

    # ------------------------------------------------------------------
    def seed(self):
        """Load the bright-target and Kepler catalogs (deploy step).

        Set-oriented: one query finds which names already exist, one
        batched INSERT creates the rest — instead of a get-or-create
        pair per star.
        """
        qs = Star.objects.using(self.db)
        wanted = {}
        for name, entry in BRIGHT_TARGETS.items():
            wanted[name] = Star(name=name, hd_number=entry["hd"],
                                source="local")
        for kic_name in sorted(self._kepler_names):
            number = int(kic_name.split()[1])
            wanted.setdefault(
                kic_name, Star(name=kic_name, kic_number=number,
                               in_kepler_catalog=True, source="local"))
        existing = set(
            qs.filter(name__in=sorted(wanted)).only("name")
            .values_list("name", flat=True))
        missing = [star for name, star in sorted(wanted.items())
                   if name not in existing]
        if missing:
            qs.bulk_create(missing)
        return qs.count()

    # ------------------------------------------------------------------
    def suggest(self, prefix, limit=10):
        """AJAX suggestions: stars with results or in the Kepler catalog.

        Matches name, "HD n" and "KIC n" identifier forms.
        """
        prefix = prefix.strip()
        if not prefix:
            return []
        qs = Star.objects.using(self.db).only(
            "name", "hd_number", "kic_number", "in_kepler_catalog")
        condition = Q(name__istartswith=prefix)
        hd_match = _HD_RE.match(prefix) or re.match(r"^\s*(\d+)\s*$",
                                                    prefix)
        if hd_match:
            condition = condition | Q(
                hd_number=int(hd_match.group(1)))
        kic_match = _KIC_RE.match(prefix)
        if kic_match:
            condition = condition | Q(kic_number=int(kic_match.group(1)))
        stars = list(qs.filter(condition).order_by("name")[:limit])
        return [{"id": star.pk, "name": star.name,
                 "identifiers": star.identifier_strings(),
                 "kepler": bool(star.in_kepler_catalog)}
                for star in stars]

    def search(self, text):
        """Full search with SIMBAD fallback-and-import.

        Returns ``(star, created)``; ``(None, False)`` when nothing
        resolves anywhere.
        """
        text = text.strip()
        if not text:
            return None, False
        qs = Star.objects.using(self.db)
        # Local catalog first: one query covering every identifier form
        # (exact name, "HD n", "KIC n") instead of up to three round
        # trips; an exact name match wins over identifier matches.
        condition = Q(name__iexact=text)
        hd_match = _HD_RE.match(text)
        if hd_match:
            condition = condition | Q(hd_number=int(hd_match.group(1)))
        kic_match = _KIC_RE.match(text)
        if kic_match:
            condition = condition | Q(kic_number=int(kic_match.group(1)))
        matches = list(qs.filter(condition)[:10])
        for star in matches:
            if star.name.lower() == text.lower():
                return star, False
        if matches:
            return matches[0], False
        # Fall back to SIMBAD and import on success.
        entry = self.simbad.query(text)
        if entry is None:
            return None, False
        star, created = Star.objects.using(self.db).get_or_create(
            name=entry["name"],
            defaults={"hd_number": entry["hd_number"],
                      "ra_deg": entry["ra_deg"],
                      "dec_deg": entry["dec_deg"], "source": "simbad"})
        return star, created
