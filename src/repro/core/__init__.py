"""AMP — the paper's primary contribution (DESIGN.md §3.5).

Shared core models, the GridAMP workflow daemon with its Listing 1 state
machines, input marshaling, the catalog with SIMBAD fallback, the
security role scheme, notifications, the §6 Gantt tool, the portal, and
a one-call full deployment (:class:`~repro.core.bootstrap.AMPDeployment`).
"""

from .bootstrap import (AMPDeployment, DEFAULT_PROJECT,
                        build_prefork_app_factory)
from .catalog import SimbadService, StarCatalog
from .daemon import ExternalMonitor, GridAMPDaemon
from .leases import LeaseManager
from .models import (ALL_MODELS, CORE_MODELS, AllocationRecord,
                     CampaignRecord,
                     GridJobRecord, HOLD_MODEL, HOLD_RESOURCE,
                     JOURNAL_ABORTED, JOURNAL_COMMITTED, JOURNAL_INTENT,
                     KIND_DIRECT, KIND_OPTIMIZATION,
                     LEASE_KIND_PRESENCE, LEASE_KIND_SLICE, LeaseRecord,
                     MACHINE_AUTO,
                     MachineRecord, ObservationSet, OperationRecord,
                     RESERVATION_RELEASED, RESERVATION_RESERVED,
                     RESERVATION_SETTLED, ReservationRecord,
                     SIM_ACTIVE_STATES,
                     SIM_CANCELLED, SIM_CLEANUP, SIM_DONE, SIM_HOLD,
                     SIM_POSTJOB, SIM_PREJOB, SIM_QUEUED, SIM_RUNNING,
                     SIM_STATES, Simulation, Star, SubmitAuthorization,
                     UserProfile, idempotency_key, presence_lease_key,
                     reservation_key, slice_lease_key)
from .notifications import (AUDIENCE_ADMIN, AUDIENCE_USER, JargonLeak,
                            Mailer, NotificationPolicy)
from .security import audit_role_separation, build_role_registry
from .staging import StagingError, generate_input_files
from .workflow import (DirectRunWorkflow, ModelFailure,
                       OptimizationWorkflow, WorkflowManager)

__all__ = [
    "ALL_MODELS", "AMPDeployment", "AUDIENCE_ADMIN", "AUDIENCE_USER",
    "AllocationRecord", "CORE_MODELS", "CampaignRecord",
    "DEFAULT_PROJECT",
    "DirectRunWorkflow", "ExternalMonitor", "GridAMPDaemon",
    "GridJobRecord", "HOLD_MODEL", "HOLD_RESOURCE", "JargonLeak",
    "JOURNAL_ABORTED", "JOURNAL_COMMITTED", "JOURNAL_INTENT",
    "KIND_DIRECT", "KIND_OPTIMIZATION", "LEASE_KIND_PRESENCE",
    "LEASE_KIND_SLICE", "LeaseManager", "LeaseRecord", "MACHINE_AUTO",
    "MachineRecord", "Mailer", "ModelFailure", "NotificationPolicy",
    "ObservationSet", "OperationRecord", "OptimizationWorkflow",
    "RESERVATION_RELEASED", "RESERVATION_RESERVED",
    "RESERVATION_SETTLED", "ReservationRecord", "reservation_key",
    "idempotency_key", "presence_lease_key", "slice_lease_key",
    "SIM_ACTIVE_STATES",
    "SIM_CANCELLED", "SIM_CLEANUP", "SIM_DONE", "SIM_HOLD", "SIM_POSTJOB",
    "SIM_PREJOB", "SIM_QUEUED", "SIM_RUNNING", "SIM_STATES",
    "SimbadService", "Simulation", "StagingError", "Star", "StarCatalog",
    "SubmitAuthorization", "UserProfile", "WorkflowManager",
    "audit_role_separation", "build_prefork_app_factory",
    "build_role_registry", "generate_input_files",
]
