"""RSL (Resource Specification Language) job descriptions.

GRAM job requests in the Globus pre-WS era were RSL strings like::

    &(executable=/usr/local/amp/run_ga.sh)(count=128)(maxWallTime=360)
     (jobType=mpi)(directory=/scratch/amp/sim42)(arguments=seg1)

The GridAMP daemon formulates these directly (§4.3); keeping the textual
form preserves the paper's copy-paste debuggability — a failed request's
RSL is printable and re-submittable verbatim.
"""

from __future__ import annotations

import re


class RSLError(Exception):
    pass


#: Relation names GRAM understands here.  ``dependsOn`` is the §6
#: "Grid-based (but possibly nonstandard)" job-chaining extension: a
#: comma-separated list of prior GRAM job ids on the same resource that
#: must complete before this job becomes eligible.
KNOWN_ATTRIBUTES = {
    "executable", "arguments", "count", "maxWallTime", "directory",
    "jobType", "stdout", "stderr", "environment", "dependsOn",
    # The daemon's idempotency tag: stamped on every submission so a
    # restarted daemon can recover an orphaned job's id by tag lookup.
    "clientTag",
}


def format_rsl(spec: dict) -> str:
    """Serialise a job spec dict to an RSL string."""
    parts = []
    for key, value in spec.items():
        if key not in KNOWN_ATTRIBUTES:
            raise RSLError(f"Unknown RSL attribute {key!r}")
        if isinstance(value, (list, tuple)):
            value = " ".join(str(v) for v in value)
        parts.append(f"({key}={value})")
    return "&" + "".join(parts)


_PAIR_RE = re.compile(r"\((\w+)=([^()]*)\)")


def parse_rsl(text: str) -> dict:
    """Parse an RSL string back into a dict (values are strings)."""
    text = text.strip()
    if not text.startswith("&"):
        raise RSLError("RSL must start with '&'")
    body = text[1:]
    spec = {}
    consumed = 0
    for match in _PAIR_RE.finditer(body):
        key, value = match.group(1), match.group(2)
        if key not in KNOWN_ATTRIBUTES:
            raise RSLError(f"Unknown RSL attribute {key!r}")
        spec[key] = value
        consumed += match.end() - match.start()
    if consumed != len(body.replace(" ", "")) and "(" in body:
        # Tolerate whitespace between relations but nothing else.
        stripped = _PAIR_RE.sub("", body).strip()
        if stripped:
            raise RSLError(f"Malformed RSL fragment: {stripped!r}")
    if "executable" not in spec:
        raise RSLError("RSL missing required attribute 'executable'")
    return spec


def batch_spec(executable, *, count, max_wall_time_s, directory,
               arguments=(), job_type="mpi"):
    """Convenience builder for a batch (scheduler) job spec."""
    return {
        "executable": executable,
        "count": int(count),
        "maxWallTime": int(round(max_wall_time_s / 60.0)),  # RSL: minutes
        "directory": directory,
        "jobType": job_type,
        "arguments": list(arguments),
    }


def fork_spec(executable, *, directory, arguments=()):
    """Convenience builder for a fork (login node) job spec."""
    return {
        "executable": executable,
        "count": 1,
        "directory": directory,
        "jobType": "single",
        "arguments": list(arguments),
    }
