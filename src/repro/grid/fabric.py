"""GridFabric — one object wiring resources, services, and credentials.

The "grid" a GridAMP daemon talks to: per-resource GRAM and GridFTP
services sharing one audit log, a community credential with its proxy
factory, and the CTSS registry.  Build one with :func:`build_fabric`.
"""

from __future__ import annotations

from ..hpc.cluster import ComputeResource
from .audit import AuditLog
from .certificates import CommunityCredential, ProxyFactory
from .ctss import advertised_stack
from .errors import UnknownResourceError
from .gram import GramService
from .gridftp import GridFTPService


class GridFabric:
    def __init__(self, clock, credential=None):
        self.clock = clock
        self.credential = credential or CommunityCredential(
            "/C=US/O=NCAR/OU=AMP/CN=amp-community")
        self.proxy_factory = ProxyFactory(self.credential, clock)
        self.audit = AuditLog()
        self._resources = {}
        self._gram = {}
        self._gridftp = {}

    # ------------------------------------------------------------------
    def add_resource(self, resource: ComputeResource):
        name = resource.name
        self._resources[name] = resource
        self._gram[name] = GramService(resource, self.proxy_factory,
                                       self.clock, self.audit)
        self._gridftp[name] = GridFTPService(resource, self.proxy_factory,
                                             self.clock, self.audit)
        return resource

    def resource(self, name):
        try:
            return self._resources[name]
        except KeyError:
            raise UnknownResourceError(f"No resource {name!r} on the grid")

    def gram(self, name):
        self.resource(name)
        return self._gram[name]

    def gridftp(self, name):
        self.resource(name)
        return self._gridftp[name]

    def resource_names(self):
        return sorted(self._resources)

    def stacks(self):
        """Advertised CTSS stacks for every resource."""
        return {name: advertised_stack(res.machine)
                for name, res in self._resources.items()}


def build_fabric(machines, clock, credential=None):
    """Create a fabric with one :class:`ComputeResource` per machine."""
    fabric = GridFabric(clock, credential)
    for machine in machines:
        fabric.add_resource(ComputeResource(machine, clock))
    return fabric
