"""GRAM job management services.

One :class:`GramService` fronts one compute resource and offers the two
job managers the paper uses:

- the **fork** service runs small scripts immediately on the login node
  (pre-job, post-job, cleanup stages),
- the **batch** service translates an RSL request into a
  :class:`~repro.hpc.scheduler.BatchJob` on the resource's scheduler
  (the model runs themselves).

Clients poll job state (``UNSUBMITTED/PENDING/ACTIVE/DONE/FAILED``) —
GRAM's state vocabulary — and every operation verifies the proxy
certificate and writes an audit record attributed to the SAML gateway
user.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..hpc import scheduler as sched
from .certificates import CertificateInvalid
from .errors import (CredentialError, PermanentGridError,
                     ServiceUnreachable, SubmitRejected)
from .faults import check_latency

# GRAM job states.
UNSUBMITTED = "UNSUBMITTED"
PENDING = "PENDING"
ACTIVE = "ACTIVE"
DONE = "DONE"
FAILED = "FAILED"

_BATCH_STATE_MAP = {
    sched.PENDING: PENDING,
    sched.RUNNING: ACTIVE,
    sched.COMPLETED: DONE,
    sched.WALLTIME_EXCEEDED: FAILED,
    sched.FAILED: FAILED,
    sched.CANCELLED: FAILED,
}


@dataclass
class GramJob:
    """Service-side record of one GRAM request."""

    id: int
    service: str                 # "fork" | "batch"
    rsl: dict
    gateway_user: str
    state: str = UNSUBMITTED
    batch_job_id: int = None
    failure_reason: str = ""
    execution: object = None     # AppExecution for batch jobs

    @property
    def contact(self):
        """The GRAM job contact string clients hold."""
        return f"https://gram.{self.id}.example/{self.service}"


@dataclass
class AppExecution:
    """What a batch executable returns when launched.

    ``runtime_s`` is the job's compute time; ``on_finish`` runs at
    successful completion (writes output files); ``on_walltime`` runs if
    the scheduler kills the job (normally nothing — AMP jobs checkpoint
    and exit early by design).
    """

    runtime_s: float
    on_finish: object = None
    on_walltime: object = None


class GramService:
    def __init__(self, resource, proxy_factory, clock, audit):
        self.resource = resource
        self.proxy_factory = proxy_factory
        self.clock = clock
        self.audit = audit
        self.jobs = {}
        # Per-service id sequence (job ids are only ever resolved
        # against this service's table): a fresh fabric starts at 1, so
        # replayed fault schedules log identical command lines.
        self._gram_ids = itertools.count(1)
        #: Fault injection: refuse the next N submissions.
        self._submit_rejections = 0

    def inject_submit_rejections(self, n):
        self._submit_rejections += int(n)

    # ------------------------------------------------------------------
    def _check_access(self, proxy, operation):
        if not self.resource.reachable:
            self.audit.record(self.clock, operation, self.resource.name,
                              getattr(proxy.saml, "gateway_user", "?"),
                              detail="unreachable", success=False)
            raise ServiceUnreachable(
                f"{self.resource.name}: gatekeeper did not respond")
        check_latency(self.resource, self.clock.now)
        try:
            self.proxy_factory.verify(proxy)
        except CertificateInvalid as exc:
            self.audit.record(self.clock, operation, self.resource.name,
                              getattr(proxy.saml, "gateway_user", "?"),
                              detail=str(exc), success=False)
            raise CredentialError(str(exc))

    # ------------------------------------------------------------------
    def submit(self, proxy, rsl_spec, *, service="batch"):
        """Submit a job; returns the GRAM job id."""
        self._check_access(proxy, "gram-submit")
        if self._submit_rejections > 0:
            self._submit_rejections -= 1
            self.audit.record(self.clock, "gram-submit",
                              self.resource.name,
                              proxy.saml.gateway_user,
                              detail="rejected", success=False)
            raise SubmitRejected(
                f"{self.resource.name}: gatekeeper rejected the "
                f"submission")
        gram_job = GramJob(id=next(self._gram_ids), service=service,
                           rsl=dict(rsl_spec),
                           gateway_user=proxy.saml.gateway_user)
        self.jobs[gram_job.id] = gram_job
        self.audit.record(self.clock, "gram-submit", self.resource.name,
                          gram_job.gateway_user,
                          detail=rsl_spec.get("executable", "?"))
        if service == "fork":
            self._run_fork(gram_job)
        elif service == "batch":
            self._submit_batch(gram_job)
        else:
            raise PermanentGridError(f"Unknown job service {service!r}")
        return gram_job.id

    def _run_fork(self, gram_job):
        """Fork jobs execute immediately on the login node."""
        executable = gram_job.rsl["executable"]
        args = gram_job.rsl.get("arguments", [])
        kwargs = _arguments_to_kwargs(args)
        kwargs.setdefault("directory", gram_job.rsl.get("directory", "/"))
        try:
            self.resource.fork.run(executable, **kwargs)
            gram_job.state = DONE
        except Exception as exc:  # noqa: BLE001 - script failure surface
            gram_job.state = FAILED
            gram_job.failure_reason = f"{type(exc).__name__}: {exc}"

    def _submit_batch(self, gram_job):
        executable = gram_job.rsl["executable"]
        app = self.resource.applications.get(executable)
        if app is None:
            gram_job.state = FAILED
            gram_job.failure_reason = f"No such executable {executable!r}"
            return
        # §6 job chaining: translate prior GRAM job ids into scheduler
        # dependencies.  Requires the resource's scheduler to support
        # chaining (all Table 1 systems' schedulers did).
        after = ()
        depends_on = gram_job.rsl.get("dependsOn")
        if depends_on:
            if not self.resource.machine.scheduler_supports_chaining:
                gram_job.state = FAILED
                gram_job.failure_reason = (
                    "scheduler does not support job chaining")
                return
            try:
                dep_ids = [int(part) for part in
                           str(depends_on).split(",") if part.strip()]
                after = tuple(self.jobs[dep].batch_job_id
                              for dep in dep_ids)
            except KeyError as exc:
                gram_job.state = FAILED
                gram_job.failure_reason = f"Unknown dependency {exc}"
                return
        args = gram_job.rsl.get("arguments", [])
        kwargs = _arguments_to_kwargs(args)
        directory = gram_job.rsl.get("directory", "/")
        resource = self.resource

        def payload(batch_job, _gram=gram_job):
            execution = app(resource, directory=directory, **kwargs)
            _gram.execution = execution
            batch_job.runtime_fn = execution.runtime_s

        def on_complete(batch_job, _gram=gram_job):
            if batch_job.status == sched.COMPLETED \
                    and _gram.execution is not None \
                    and _gram.execution.on_finish is not None:
                _gram.execution.on_finish()
            if batch_job.status == sched.WALLTIME_EXCEEDED \
                    and _gram.execution is not None \
                    and _gram.execution.on_walltime is not None:
                _gram.execution.on_walltime()

        batch_job = sched.BatchJob(
            name=f"gram-{gram_job.id}-{executable}",
            cores=int(gram_job.rsl.get("count", 1)),
            walltime_limit_s=float(gram_job.rsl.get("maxWallTime", 60))
            * 60.0,
            runtime_fn=0.0, payload=payload, on_complete=on_complete,
            after=after, user=gram_job.gateway_user)
        self.resource.scheduler.submit(batch_job)
        gram_job.batch_job_id = batch_job.id
        gram_job.state = PENDING

    # ------------------------------------------------------------------
    def poll(self, proxy, gram_job_id):
        """Current GRAM state of a job."""
        self._check_access(proxy, "gram-poll")
        gram_job = self._get(gram_job_id)
        if gram_job.service == "batch" and gram_job.batch_job_id is not None:
            batch_status = self.resource.scheduler.status_of(
                gram_job.batch_job_id)
            gram_job.state = _BATCH_STATE_MAP[batch_status]
            if gram_job.state == FAILED and not gram_job.failure_reason:
                gram_job.failure_reason = f"batch status {batch_status}"
        self.audit.record(self.clock, "gram-poll", self.resource.name,
                          gram_job.gateway_user,
                          detail=f"job {gram_job_id} -> {gram_job.state}")
        return gram_job.state

    def cancel(self, proxy, gram_job_id):
        self._check_access(proxy, "gram-cancel")
        gram_job = self._get(gram_job_id)
        if gram_job.service == "batch" and gram_job.batch_job_id is not None:
            self.resource.scheduler.cancel(gram_job.batch_job_id)
            gram_job.state = FAILED
            gram_job.failure_reason = "cancelled by client"
        self.audit.record(self.clock, "gram-cancel", self.resource.name,
                          gram_job.gateway_user, detail=str(gram_job_id))
        return True

    def find_by_tag(self, proxy, tag):
        """The GRAM job whose RSL carries ``clientTag=tag``, or None.

        The restart-reconciliation primitive: the daemon journals an
        intent keyed by a deterministic idempotency tag and stamps the
        same tag into the submitted RSL, so after a crash it can ask the
        job manager — not its own lost memory — whether the submission
        actually happened.  Tags are unique by construction (one tag is
        never submitted twice), so the first match is the only match.
        """
        self._check_access(proxy, "gram-lookup")
        for gram_job in self.jobs.values():
            if gram_job.rsl.get("clientTag") == tag:
                self.audit.record(self.clock, "gram-lookup",
                                  self.resource.name,
                                  proxy.saml.gateway_user,
                                  detail=f"{tag} -> job {gram_job.id}")
                return gram_job
        self.audit.record(self.clock, "gram-lookup", self.resource.name,
                          proxy.saml.gateway_user,
                          detail=f"{tag} -> not found")
        return None

    def failure_reason(self, gram_job_id):
        return self._get(gram_job_id).failure_reason

    def _get(self, gram_job_id):
        try:
            return self.jobs[gram_job_id]
        except KeyError:
            raise PermanentGridError(f"Unknown GRAM job {gram_job_id}")


def _arguments_to_kwargs(arguments):
    """Parse ``key=value`` argument lists into kwargs (plain args kept
    under ``argv``)."""
    kwargs, argv = {}, []
    for arg in arguments or []:
        text = str(arg)
        if "=" in text:
            key, _, value = text.partition("=")
            kwargs[key] = value
        else:
            argv.append(text)
    if argv:
        kwargs["argv"] = argv
    return kwargs
