"""Per-resource circuit breakers for the daemon's grid traffic.

The retry budget (``grid.retry``) bounds how long one *simulation*
chases one failing operation; the circuit breaker bounds how much grid
traffic the *daemon as a whole* throws at a resource that is plainly
down.  Standard three-state machine, driven by the shared sim clock:

- **closed** — normal operation; consecutive transient failures count
  up, any success resets.
- **open** — after ``failure_threshold`` consecutive failures; every
  call to the resource is suppressed client-side (a synthetic transient,
  no grid traffic) until ``open_for_s`` of virtual time elapses.
- **half-open** — one probe is let through; success closes the breaker,
  failure re-opens it for another cooldown.

Suppressed calls never feed the failure counter — only traffic that
actually reached the fabric counts, otherwise an open breaker could
keep itself open forever.

Every transition is recorded with its virtual timestamp; the soak tests
assert the open/close event log matches the injected outage windows, and
the daemon publishes breaker state into machine telemetry so the portal
(statistics page, submission routing) can steer users away from sick
resources without ever touching the grid itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

BREAKER_STATES = (CLOSED, OPEN, HALF_OPEN)


@dataclass(frozen=True)
class BreakerPolicy:
    failure_threshold: int = 3
    open_for_s: float = 3600.0


@dataclass(frozen=True)
class BreakerEvent:
    """One state transition, virtual-time stamped."""

    time: float
    resource: str
    from_state: str
    to_state: str
    reason: str


class CircuitBreaker:
    """Health tracking for one resource."""

    def __init__(self, resource, clock, policy=None, obs=None,
                 origin=""):
        self.resource = resource
        self.clock = clock
        self.policy = policy or BreakerPolicy()
        self.obs = obs
        #: Which fleet instance's registry this breaker belongs to.
        #: Singleton deployments leave it empty and their events carry
        #: no origin field (byte-stable with every pre-fleet log).
        self.origin = origin
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = None
        self.events = []

    # ------------------------------------------------------------------
    def _transition(self, to_state, reason):
        event = BreakerEvent(self.clock.now, self.resource,
                             self.state, to_state, reason)
        self.events.append(event)
        self.state = to_state
        if to_state == OPEN:
            self.opened_at = self.clock.now
        elif to_state == CLOSED:
            self.opened_at = None
            self.consecutive_failures = 0
        if self.obs is not None:
            # The single emission point for breaker transitions: admin
            # notifications and the portal both ride on this event.
            self.obs.metrics.counter(
                "breaker_transitions_total",
                help="Circuit-breaker state transitions").labels(
                resource=self.resource, to_state=to_state).inc()
            self.obs.metrics.gauge(
                "breaker_open",
                help="1 while the resource circuit is open or probing"
            ).labels(resource=self.resource).set(
                0.0 if to_state == CLOSED else 1.0)
            extra = {"origin": self.origin} if self.origin else {}
            self.obs.events.emit(
                "breaker.transition", resource=self.resource,
                from_state=event.from_state, to_state=to_state,
                reason=reason, **extra)

    # ------------------------------------------------------------------
    def allow(self):
        """May a call to this resource proceed right now?

        While open, returns False until the cooldown elapses; the first
        call after that flips to half-open and is admitted as the probe.
        Further calls during the probe stay suppressed.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if (self.clock.now - self.opened_at
                    >= self.policy.open_for_s - 1e-9):
                self._transition(HALF_OPEN, "cooldown elapsed; probing")
                return True
            return False
        return False          # half-open: probe already in flight

    def record_success(self):
        self.consecutive_failures = 0
        if self.state == HALF_OPEN:
            self._transition(CLOSED, "probe succeeded")
        elif self.state == OPEN:
            # A success that raced past an opening breaker: recovery.
            self._transition(CLOSED, "success while open")

    def record_failure(self):
        if self.state == HALF_OPEN:
            self._transition(OPEN, "probe failed")
            return
        self.consecutive_failures += 1
        if (self.state == CLOSED and self.consecutive_failures
                >= self.policy.failure_threshold):
            self._transition(
                OPEN, f"{self.consecutive_failures} consecutive failures")


class BreakerRegistry:
    """Lazy per-resource breakers sharing one clock and policy."""

    def __init__(self, clock, policy=None, obs=None, origin=""):
        self.clock = clock
        self.policy = policy or BreakerPolicy()
        self.obs = obs
        #: Fleet-instance tag stamped onto every transition event this
        #: registry emits, so each daemon's notification subscriber can
        #: deliver mail for its own breakers only.
        self.origin = origin
        self._breakers = {}

    def attach_obs(self, obs):
        """Late-bind the observability facade (deployment wiring)."""
        self.obs = obs
        for breaker in self._breakers.values():
            breaker.obs = obs

    def breaker(self, resource):
        breaker = self._breakers.get(resource)
        if breaker is None:
            breaker = CircuitBreaker(resource, self.clock, self.policy,
                                     obs=self.obs, origin=self.origin)
            self._breakers[resource] = breaker
        return breaker

    # -- the GridClients-facing surface --------------------------------
    def allow(self, resource):
        return self.breaker(resource).allow()

    def record_success(self, resource):
        self.breaker(resource).record_success()

    def record_failure(self, resource):
        self.breaker(resource).record_failure()

    # -- restart rehydration -------------------------------------------
    def restore(self, resource, state, failures=0, opened_at=None):
        """Rehydrate one breaker from persisted telemetry (no events).

        The daemon publishes breaker snapshots into machine telemetry
        every poll; a restarted daemon reads them back so a machine that
        was provably sick before the crash does not greet the new
        process with a fresh CLOSED breaker (which would let
        ``recover_resource_holds`` hand out refreshed retry budgets the
        moment the daemon bounces).  Restoring is *recall*, not a
        transition: no ``breaker.transition`` event fires, so replayed
        schedules keep byte-identical logs.
        """
        if state not in BREAKER_STATES:
            raise ValueError(f"Unknown breaker state {state!r}")
        if state == HALF_OPEN:
            # The in-flight probe died with the old process; re-open and
            # let the cooldown admit a fresh probe.
            state = OPEN
        breaker = self.breaker(resource)
        breaker.state = state
        breaker.consecutive_failures = int(failures or 0)
        breaker.opened_at = opened_at if state != CLOSED else None
        if state != CLOSED and breaker.opened_at is None:
            # Persisted rows can predate the opened_at column; treat
            # the restart instant as the opening time (conservative:
            # the breaker stays open a full cooldown from now).
            breaker.opened_at = self.clock.now
        return breaker

    # -- observability -------------------------------------------------
    def state_of(self, resource):
        breaker = self._breakers.get(resource)
        return breaker.state if breaker is not None else CLOSED

    def snapshot(self, resource):
        """(state, consecutive_failures, opened_at) for telemetry rows."""
        breaker = self._breakers.get(resource)
        if breaker is None:
            return CLOSED, 0, None
        return (breaker.state, breaker.consecutive_failures,
                breaker.opened_at)

    def events_for(self, resource):
        breaker = self._breakers.get(resource)
        return list(breaker.events) if breaker is not None else []

    def all_events(self):
        """Every transition across resources, in time order."""
        events = [event for breaker in self._breakers.values()
                  for event in breaker.events]
        events.sort(key=lambda e: e.time)
        return events

    def open_resources(self):
        return sorted(name for name, b in self._breakers.items()
                      if b.state != CLOSED)

    def placeable(self, resource):
        """Whether the resource broker may place *new* work here.

        Stricter than ``allow()``: a HALF_OPEN breaker admits its
        telemetry probe, but new placements wait until the probe has
        actually closed the breaker — a recovering machine earns back
        live traffic before it earns back fresh load.
        """
        return self.state_of(resource) == CLOSED
