"""The execution-backend interface.

One :class:`ComputeBackend` encapsulates *how* the gateway talks to one
kind of execution substrate — Globus/GRAM middleware, the daemon host's
own subprocess pool, a cloud batch service — behind a single contract
the workflow engine never looks past:

- every operation is expressed as an **argv vector** and funnelled
  through :meth:`GridClients._run`, so the paper's copy-paste
  debuggability (command log, ``rerun()``, breaker suppression,
  per-command observability) applies to every substrate identically;
- results carry the shared exit-code taxonomy (0 ok, 75 transient,
  1 permanent) by raising the :mod:`repro.grid.errors` families;
- job lifecycles are reported in the GRAM state vocabulary
  (``PENDING/ACTIVE/DONE/FAILED``) whatever the substrate's native
  states are, so the two-level status machinery and the journal
  reconciliation decision table work unchanged.

Stdout contracts (what the workflow layer parses):

========================  ==========================================
``submit``                the backend job id, as text
``poll``                  ``"<STATE>"`` or ``"FAILED <reason>"``
``lookup``                ``"<id> <STATE>"`` or ``""`` (provably
                          never submitted)
``cancel``                ``"cancelled"``
``stage_in``              the payload's md5 digest
``stage_out``             ``"<n> bytes"`` (payload on ``result.data``)
``stage_stat``            ``"<size> <md5>"`` or ``"absent"``
``queue_status``          ``"<depth> <utilisation>"``
========================  ==========================================

Backends are stateless singletons; per-resource durable state (job
tables, sandboxes, regions) lives on the fabric's
:class:`~repro.hpc.cluster.ComputeResource` objects, so a daemon bounce
(which rebuilds clients and backends) still finds every job by tag.
"""

from __future__ import annotations


class ComputeBackend:
    """Abstract execution backend; methods receive the ``clients``
    toolkit for fabric access and the ``_run`` command funnel."""

    #: Registry name; also the ``MachineRecord.backend`` column value.
    name = "abstract"
    #: Multiplier the broker applies to its SU estimate when booking a
    #: reservation on this backend (cloud billing premium, etc.).
    cost_multiplier = 1.0

    # -- command operations -------------------------------------------
    def submit(self, clients, resource_name, rsl_spec, *,
               service="batch"):
        raise NotImplementedError

    def poll(self, clients, resource_name, job_id):
        raise NotImplementedError

    def cancel(self, clients, resource_name, job_id):
        raise NotImplementedError

    def lookup(self, clients, resource_name, tag):
        raise NotImplementedError

    def stage_in(self, clients, resource_name, remote_path, data):
        raise NotImplementedError

    def stage_out(self, clients, resource_name, remote_path):
        raise NotImplementedError

    def stage_stat(self, clients, resource_name, remote_path):
        raise NotImplementedError

    def queue_status(self, clients, resource_name):
        raise NotImplementedError

    # -- placement hooks (the broker's half of the contract) ----------
    @staticmethod
    def estimate_wait_s(spec, *, queue_depth, utilisation):
        """Expected wait before a new job starts, or ``None`` to let
        the broker use its shared analytic queue predictor."""
        return None

    # -- accounting hook ----------------------------------------------
    def reported_cost_su(self, clients, resource_name, directory):
        """Backend-metered SU cost for work under *directory*, or
        ``None`` when the backend does not meter (the workflow then
        charges its own machine-benchmark estimate)."""
        return None
