"""Pluggable execution backends behind the grid client layer.

Importing this package registers the three built-in backends —
``gram`` (the paper's Globus path), ``local`` (a real subprocess pool
on the daemon host), ``cloud`` (provisioning latency, metered billing,
throttling) — in the shared registry.  Routing is per machine via the
``MachineRecord.backend`` column; see :mod:`.base` for the contract.
"""

from .base import ComputeBackend
from .cloud import CLOUD_BACKEND, PROVISION_DELAY_S, CloudBatchBackend
from .gram import GRAM_BACKEND, GramBackend
from .local import LOCAL_BACKEND, LocalPoolBackend
from .registry import (BACKEND_CLOUD, BACKEND_GRAM, BACKEND_LOCAL,
                       backend_names, get_backend, register_backend)

__all__ = [
    "ComputeBackend", "GramBackend", "LocalPoolBackend",
    "CloudBatchBackend", "GRAM_BACKEND", "LOCAL_BACKEND",
    "CLOUD_BACKEND", "BACKEND_GRAM", "BACKEND_LOCAL", "BACKEND_CLOUD",
    "PROVISION_DELAY_S", "backend_names", "get_backend",
    "register_backend",
]
