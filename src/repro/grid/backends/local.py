"""The local subprocess-pool backend.

Where GRAM fronts a remote batch scheduler in simulated time, this
backend fronts the daemon host itself in *real* time: forward-model
runs execute as genuine ``subprocess`` invocations of the current
Python interpreter inside a bounded worker pool, against a real
temporary directory standing in for scratch space.  Exit codes are real
exit codes; staged files are real files; a crashed model run is a
nonzero subprocess, not a simulated flag.

The AMP runtime layout is mirrored by executable *basename* —
``prejob.sh`` / ``postjob.sh`` / ``cleanup.sh`` run synchronously like
fork-service stages (directory trees, a real tar archive, teardown),
``run_model.sh`` runs pooled.  GA segments are not installed here: the
local pool exists for small direct forward models, and an optimization
landing on it fails with the same "no such executable" shape GRAM uses
for a missing application.

Per-resource state lives on the :class:`ComputeResource` as
``resource.local_pool``, so a daemon bounce (which rebuilds clients and
backends but keeps the fabric) still finds every job by id or tag.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import shutil
import subprocess
import sys
import tarfile
import tempfile
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..errors import PermanentGridError, ServiceUnreachable
from ..faults import check_latency
from ..rsl import format_rsl, parse_rsl
from .base import ComputeBackend
from .registry import BACKEND_LOCAL, register_backend

# External state vocabulary (shared with GRAM — see backends.base).
PENDING = "PENDING"
ACTIVE = "ACTIVE"
DONE = "DONE"
FAILED = "FAILED"

#: Real-time ceiling for one pooled model run; a run that exceeds it is
#: killed and reported as a walltime failure.
SUBPROCESS_TIMEOUT_S = 120.0
#: How long one poll waits (real time) for a running job to finish —
#: local model runs take well under a second, so a single daemon cycle
#: normally observes completion.
POLL_WAIT_S = 60.0

_RUN_MODEL_CODE = """\
import os, sys
sys.path.insert(0, sys.argv[1])
directory, orders = sys.argv[2], int(sys.argv[3])
from repro.science.astec.model import (format_output, parse_input_file,
                                       run_astec)
with open(os.path.join(directory, "input.txt")) as fh:
    params = parse_input_file(fh.read())
model = run_astec(params, n_orders=orders)
with open(os.path.join(directory, "output.txt"), "w") as fh:
    fh.write(format_output(model))
with open(os.path.join(directory, "model.log"), "w") as fh:
    fh.write("model completed by local pool worker\\n")
"""

_STATIC_FILES = {
    "static/opacities.dat": "# opacity tables (static input)\n",
    "static/eos.dat": "# equation of state tables (static input)\n",
    "static/atmosphere.dat": "# atmosphere T(tau) relation\n",
}


def _src_root():
    """The import root of this checkout, for the worker's sys.path."""
    import repro
    return os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))


@dataclass
class LocalJob:
    id: int
    service: str
    rsl: dict
    state: str = PENDING
    failure_reason: str = ""
    future: object = None

    @property
    def tag(self):
        return self.rsl.get("clientTag")


class LocalPool:
    """One resource's sandbox + worker pool + job table."""

    def __init__(self, resource, max_workers=4):
        self.resource = resource
        self.root = tempfile.mkdtemp(
            prefix=f"amp-local-{resource.name}-")
        self.executor = ThreadPoolExecutor(
            max_workers=max_workers,
            thread_name_prefix=f"amp-local-{resource.name}")
        self.max_workers = max_workers
        self.jobs = {}
        self._ids = itertools.count(1)
        self._finalizer = weakref.finalize(
            self, _dispose, self.executor, self.root)

    # -- path mapping --------------------------------------------------
    def host_path(self, remote_path):
        return os.path.join(self.root, remote_path.lstrip("/"))

    # -- lifecycle -----------------------------------------------------
    def submit(self, rsl_spec, service):
        job = LocalJob(id=next(self._ids), service=service,
                       rsl=dict(rsl_spec))
        self.jobs[job.id] = job
        executable = os.path.basename(str(rsl_spec.get("executable", "")))
        directory = self.host_path(rsl_spec.get("directory", "/"))
        kwargs = _rsl_kwargs(rsl_spec)
        if service == "fork":
            self._run_stage(job, executable, directory, kwargs)
        elif executable == "run_model.sh":
            orders = str(kwargs.get("orders", "10"))
            job.future = self.executor.submit(
                _run_model_subprocess, directory, orders)
        else:
            job.state = FAILED
            job.failure_reason = f"No such executable {executable!r}"
        return job

    def _run_stage(self, job, executable, directory, kwargs):
        """Fork-style stages run synchronously on real directories."""
        try:
            if executable == "prejob.sh":
                if os.path.isdir(directory):
                    shutil.rmtree(directory)
                os.makedirs(directory)
                for rel, content in _STATIC_FILES.items():
                    path = os.path.join(directory, rel)
                    os.makedirs(os.path.dirname(path), exist_ok=True)
                    with open(path, "w") as fh:
                        fh.write(content)
                for index in range(int(kwargs.get("n_ga", "0"))):
                    os.makedirs(os.path.join(directory, f"ga_{index}"),
                                exist_ok=True)
                with open(os.path.join(directory, "README"), "w") as fh:
                    fh.write("AMP runtime directory — created by local "
                             "prejob stage\n")
            elif executable == "postjob.sh":
                tarball = directory.rstrip("/") + ".output.tar"
                with tarfile.open(tarball, "w") as archive:
                    for base, _dirs, names in sorted(os.walk(directory)):
                        for name in sorted(names):
                            full = os.path.join(base, name)
                            archive.add(full, arcname=os.path.relpath(
                                full, directory))
            elif executable == "cleanup.sh":
                if os.path.isdir(directory):
                    shutil.rmtree(directory)
                tarball = directory.rstrip("/") + ".output.tar"
                if os.path.exists(tarball):
                    os.remove(tarball)
            else:
                raise KeyError(f"No script {executable!r} installed on "
                               f"{self.resource.name}")
            job.state = DONE
        except Exception as exc:  # noqa: BLE001 - script failure surface
            job.state = FAILED
            job.failure_reason = f"{type(exc).__name__}: {exc}"

    def harvest(self, job, wait_s=POLL_WAIT_S):
        """Advance a pooled job's reported state from its future."""
        if job.future is None or job.state in (DONE, FAILED):
            return job.state
        future = job.future
        if not future.done():
            job.state = ACTIVE if future.running() else PENDING
            try:
                future.result(timeout=wait_s)
            except Exception:  # noqa: BLE001 - reported below
                pass
        if not future.done():
            return job.state
        try:
            completed = future.result()
        except Exception as exc:  # noqa: BLE001 - worker infrastructure
            job.state = FAILED
            job.failure_reason = f"{type(exc).__name__}: {exc}"
            return job.state
        if completed.returncode == 0:
            job.state = DONE
        else:
            job.state = FAILED
            tail = (completed.stderr or "").strip().splitlines()
            job.failure_reason = (
                f"exit code {completed.returncode}: "
                f"{tail[-1] if tail else 'no error output'}")
        return job.state

    def cancel(self, job):
        if job.future is not None and job.future.cancel():
            job.state = FAILED
            job.failure_reason = "cancelled by client"
            return
        self.harvest(job)
        if job.state not in (DONE, FAILED):
            job.state = FAILED
            job.failure_reason = "cancelled by client"

    def find_by_tag(self, tag):
        for job in self.jobs.values():
            if job.tag == tag:
                return job
        return None

    def depth(self):
        return sum(1 for job in self.jobs.values()
                   if job.future is not None and not job.future.done())

    def utilisation(self):
        running = sum(1 for job in self.jobs.values()
                      if job.future is not None
                      and job.future.running())
        return min(running / float(self.max_workers), 1.0)


def _dispose(executor, root):
    executor.shutdown(wait=False, cancel_futures=True)
    shutil.rmtree(root, ignore_errors=True)


def _run_model_subprocess(directory, orders):
    return subprocess.run(
        [sys.executable, "-c", _RUN_MODEL_CODE, _src_root(),
         directory, orders],
        capture_output=True, text=True, timeout=SUBPROCESS_TIMEOUT_S)


def _rsl_kwargs(rsl_spec):
    kwargs = {}
    for arg in rsl_spec.get("arguments", []) or []:
        text = str(arg)
        if "=" in text:
            key, _, value = text.partition("=")
            kwargs[key] = value
    return kwargs


def pool_for(resource):
    """The resource's :class:`LocalPool`, created on first use."""
    pool = getattr(resource, "local_pool", None)
    if pool is None:
        pool = LocalPool(resource)
        resource.local_pool = pool
    return pool


class LocalPoolBackend(ComputeBackend):
    name = BACKEND_LOCAL
    # Analysis-cluster pricing: no grid premium, no queue competition.
    cost_multiplier = 1.0

    # ------------------------------------------------------------------
    def _pool(self, clients, resource_name):
        resource = clients.fabric.resource(resource_name)
        if not resource.reachable:
            raise ServiceUnreachable(
                f"{resource_name}: local pool host did not respond")
        check_latency(resource, clients.fabric.clock.now)
        return pool_for(resource)

    # ------------------------------------------------------------------
    def submit(self, clients, resource_name, rsl_spec, *,
               service="batch"):
        rsl_text = format_rsl(rsl_spec) if isinstance(rsl_spec, dict) \
            else str(rsl_spec)
        contact = f"{resource_name}/pool-{service}"
        argv = ["amp-localrun", "-r", contact, rsl_text]

        def action():
            pool = self._pool(clients, resource_name)
            job = pool.submit(parse_rsl(rsl_text), service)
            return str(job.id)
        return clients._run(argv, action, resource=resource_name)

    def poll(self, clients, resource_name, job_id):
        argv = ["amp-localstat", "-r", resource_name, str(job_id)]

        def action():
            pool = self._pool(clients, resource_name)
            job = pool.jobs.get(int(job_id))
            if job is None:
                raise PermanentGridError(
                    f"Unknown local job {job_id}")
            state = pool.harvest(job)
            if state == FAILED:
                return f"{state} {job.failure_reason}".strip()
            return state
        return clients._run(argv, action, resource=resource_name)

    def cancel(self, clients, resource_name, job_id):
        argv = ["amp-localcancel", "-r", resource_name, str(job_id)]

        def action():
            pool = self._pool(clients, resource_name)
            job = pool.jobs.get(int(job_id))
            if job is None:
                raise PermanentGridError(
                    f"Unknown local job {job_id}")
            pool.cancel(job)
            return "cancelled"
        return clients._run(argv, action, resource=resource_name)

    def lookup(self, clients, resource_name, tag):
        argv = ["amp-locallookup", "-r", resource_name, str(tag)]

        def action():
            pool = self._pool(clients, resource_name)
            job = pool.find_by_tag(str(tag))
            if job is None:
                return ""
            return f"{job.id} {job.state}"
        return clients._run(argv, action, resource=resource_name)

    # ------------------------------------------------------------------
    def stage_in(self, clients, resource_name, remote_path, data):
        argv = ["amp-localcopy", "file:///staging/upload",
                f"local://{resource_name}{remote_path}"]

        def action():
            pool = self._pool(clients, resource_name)
            payload = data.encode("utf-8") if isinstance(data, str) \
                else bytes(data)
            path = pool.host_path(remote_path)
            parent = os.path.dirname(path)
            if not os.path.isdir(parent):
                raise PermanentGridError(
                    f"Directory {os.path.dirname(remote_path)} does "
                    f"not exist")
            with open(path, "wb") as fh:
                fh.write(payload)
            return hashlib.md5(payload).hexdigest()
        return clients._run(argv, action, resource=resource_name)

    def stage_out(self, clients, resource_name, remote_path):
        argv = ["amp-localcopy",
                f"local://{resource_name}{remote_path}",
                "file:///staging/download"]
        holder = {}

        def action():
            pool = self._pool(clients, resource_name)
            path = pool.host_path(remote_path)
            if not os.path.exists(path):
                raise PermanentGridError(f"No such file: {remote_path}")
            with open(path, "rb") as fh:
                holder["data"] = fh.read()
            return f"{len(holder['data'])} bytes"
        result = clients._run(argv, action, resource=resource_name)
        result.data = holder.get("data")
        return result

    def stage_stat(self, clients, resource_name, remote_path):
        argv = ["amp-localcopy", "-stat",
                f"local://{resource_name}{remote_path}"]

        def action():
            pool = self._pool(clients, resource_name)
            path = pool.host_path(remote_path)
            if not os.path.exists(path):
                return "absent"
            with open(path, "rb") as fh:
                payload = fh.read()
            return f"{len(payload)} {hashlib.md5(payload).hexdigest()}"
        return clients._run(argv, action, resource=resource_name)

    # ------------------------------------------------------------------
    def queue_status(self, clients, resource_name):
        argv = ["amp-localq", "-r", resource_name]

        def action():
            pool = self._pool(clients, resource_name)
            return f"{pool.depth()} {pool.utilisation():.4f}"
        return clients._run(argv, action, resource=resource_name)

    # ------------------------------------------------------------------
    @staticmethod
    def estimate_wait_s(spec, *, queue_depth, utilisation):
        """A pool slot frees as fast as a model run finishes: expected
        wait is the depth ahead of us spread over the workers."""
        per_job = spec.stellar_benchmark_s
        return max(queue_depth, 0) * per_job / 4.0


LOCAL_BACKEND = register_backend(LocalPoolBackend())
