"""The Globus/GRAM backend — the paper's original execution path.

This is the code that used to live inline in :class:`GridClients`,
moved verbatim behind the :class:`ComputeBackend` seam: identical argv
vectors (so command logs stay byte-stable), identical error wording,
identical WS-vs-pre-WS program selection, identical proxy checks.  The
clients still own proxy issuance; this backend consumes the proxy via
``clients._require_proxy()`` exactly as the inline methods did.
"""

from __future__ import annotations

from ..errors import PermanentGridError, TransientGridError
from ..gram import FAILED
from ..rsl import format_rsl, parse_rsl
from .base import ComputeBackend
from .registry import BACKEND_GRAM, register_backend


class GramBackend(ComputeBackend):
    name = BACKEND_GRAM

    # ------------------------------------------------------------------
    # globusrun (submit)
    # ------------------------------------------------------------------
    @staticmethod
    def _gram_program(clients, resource_name):
        """Prefer WS-GRAM where the resource advertises it.

        The paper targeted Kraken partly for its WS-GRAM support and
        noted Ranger's lack of it; the client toolkit mirrors that by
        selecting ``globusrun-ws`` vs pre-WS ``globusrun`` per resource.
        """
        try:
            machine = clients.fabric.resource(resource_name).machine
        except Exception:  # noqa: BLE001 - unknown resource: let the
            return "globusrun"         # submission path report it
        return "globusrun-ws" if machine.has_ws_gram else "globusrun"

    def submit(self, clients, resource_name, rsl_spec, *,
               service="batch"):
        rsl_text = format_rsl(rsl_spec) if isinstance(rsl_spec, dict) \
            else str(rsl_spec)
        contact = f"{resource_name}/jobmanager-{service}"
        program = self._gram_program(clients, resource_name)
        argv = ([program, "-submit", "-F", contact, rsl_text]
                if program == "globusrun-ws"
                else [program, "-b", "-r", contact, rsl_text])

        def action():
            proxy = clients._require_proxy()
            gram = clients.fabric.gram(resource_name)
            spec = parse_rsl(rsl_text)
            if "arguments" in spec:
                spec["arguments"] = spec["arguments"].split()
            job_id = gram.submit(proxy, spec, service=service)
            return str(job_id)
        return clients._run(argv, action, resource=resource_name)

    # ------------------------------------------------------------------
    # queue status (qstat over the fork service)
    # ------------------------------------------------------------------
    def queue_status(self, clients, resource_name):
        argv = ["globus-job-run", f"{resource_name}/jobmanager-fork",
                "/usr/bin/qstat", "-Q"]

        def action():
            proxy = clients._require_proxy()
            resource = clients.fabric.resource(resource_name)
            if not resource.reachable:
                raise TransientGridError(
                    f"{resource_name}: gatekeeper did not respond")
            from ..certificates import CertificateInvalid
            try:
                clients.fabric.proxy_factory.verify(proxy)
            except CertificateInvalid as exc:
                raise PermanentGridError(str(exc))
            scheduler = resource.scheduler
            return (f"{scheduler.queue_depth()} "
                    f"{scheduler.utilisation:.4f}")
        return clients._run(argv, action, resource=resource_name)

    # ------------------------------------------------------------------
    # globus-job-status (poll)
    # ------------------------------------------------------------------
    def poll(self, clients, resource_name, job_id):
        argv = ["globus-job-status", "-r", resource_name, str(job_id)]

        def action():
            proxy = clients._require_proxy()
            gram = clients.fabric.gram(resource_name)
            state = gram.poll(proxy, int(job_id))
            if state == FAILED:
                reason = gram.failure_reason(int(job_id))
                return f"{state} {reason}".strip()
            return state
        return clients._run(argv, action, resource=resource_name)

    def lookup(self, clients, resource_name, tag):
        argv = ["globus-job-lookup", "-r", resource_name, str(tag)]

        def action():
            proxy = clients._require_proxy()
            gram = clients.fabric.gram(resource_name)
            gram_job = gram.find_by_tag(proxy, str(tag))
            if gram_job is None:
                return ""
            return f"{gram_job.id} {gram_job.state}"
        return clients._run(argv, action, resource=resource_name)

    def cancel(self, clients, resource_name, job_id):
        argv = ["globus-job-cancel", "-r", resource_name, str(job_id)]

        def action():
            proxy = clients._require_proxy()
            clients.fabric.gram(resource_name).cancel(proxy, int(job_id))
            return "cancelled"
        return clients._run(argv, action, resource=resource_name)

    # ------------------------------------------------------------------
    # globus-url-copy (GridFTP)
    # ------------------------------------------------------------------
    def stage_in(self, clients, resource_name, remote_path, data):
        argv = ["globus-url-copy", "file:///staging/upload",
                f"gsiftp://{resource_name}{remote_path}"]

        def action():
            proxy = clients._require_proxy()
            digest = clients.fabric.gridftp(resource_name).put(
                proxy, remote_path, data)
            return digest
        return clients._run(argv, action, resource=resource_name)

    def stage_out(self, clients, resource_name, remote_path):
        argv = ["globus-url-copy",
                f"gsiftp://{resource_name}{remote_path}",
                "file:///staging/download"]
        holder = {}

        def action():
            proxy = clients._require_proxy()
            holder["data"] = clients.fabric.gridftp(resource_name).get(
                proxy, remote_path)
            return f"{len(holder['data'])} bytes"
        result = clients._run(argv, action, resource=resource_name)
        result.data = holder.get("data")
        return result

    def stage_stat(self, clients, resource_name, remote_path):
        argv = ["globus-url-copy", "-stat",
                f"gsiftp://{resource_name}{remote_path}"]

        def action():
            proxy = clients._require_proxy()
            return clients.fabric.gridftp(resource_name).stat(
                proxy, remote_path)
        return clients._run(argv, action, resource=resource_name)


GRAM_BACKEND = register_backend(GramBackend())
