"""The cloud batch backend.

Cloud semantics differ from a grid gatekeeper in three observable ways,
and this backend models exactly those three:

- **provisioning latency**: a submission is accepted immediately but
  spends a fixed window booting instances before the application runs
  (reported as ``PENDING``, like a queued grid job, but with a
  *predictable* duration — which is what makes cloud placement
  attractive when the grid queues are deep);
- **metered billing**: the region records the SU-equivalent cost of
  every completed job — billed from instance start, so provisioning
  time is charged — and reports the total per run directory via
  :meth:`reported_cost_su`, which the workflow settles against the
  ledger instead of its own benchmark estimate;
- **throttling**: the native transient failure is a rate-limit
  rejection (:class:`~repro.grid.errors.CloudThrottled`), injectable
  through the fault harness like any other transient shape.

The science runtime itself is the same AMP application set
:func:`~repro.core.remote.deploy_amp` installs on every resource — a
cloud machine runs the identical model code, it just schedules and
bills differently.  Per-resource state lives on the fabric's
:class:`ComputeResource` as ``resource.cloud_region`` so it survives a
daemon bounce.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ...hpc.accounting import cpu_hours
from ..certificates import CertificateInvalid
from ..errors import (CloudThrottled, CredentialError, PermanentGridError,
                      ServiceUnreachable)
from ..faults import check_latency
from ..rsl import format_rsl, parse_rsl
from .base import ComputeBackend
from .registry import BACKEND_CLOUD, register_backend

# External state vocabulary (shared with GRAM — see backends.base).
PENDING = "PENDING"
ACTIVE = "ACTIVE"
DONE = "DONE"
FAILED = "FAILED"

# Internal lifecycle (what the region actually tracks).
PROVISIONING = "PROVISIONING"
RUNNING = "RUNNING"

_REPORTED = {PROVISIONING: PENDING, RUNNING: ACTIVE,
             DONE: DONE, FAILED: FAILED}

#: Virtual seconds between acceptance and application start (instance
#: boot + image pull).  Fixed, not sampled: cloud wait is predictable,
#: and determinism keeps fault schedules replayable.
PROVISION_DELAY_S = 180.0


@dataclass
class CloudJob:
    id: int
    service: str
    rsl: dict
    submitted_at: float
    state: str = PROVISIONING
    started_at: float = None
    finished_at: float = None
    failure_reason: str = ""
    execution: object = None
    cost_su: float = 0.0

    @property
    def tag(self):
        return self.rsl.get("clientTag")

    @property
    def reported_state(self):
        return _REPORTED[self.state]


class CloudRegion:
    """One resource's cloud control plane: job table, meter, throttle."""

    def __init__(self, resource, clock):
        self.resource = resource
        self.clock = clock
        self.jobs = {}
        self._ids = itertools.count(1)
        #: Fault injection: shed the next N submissions.
        self.throttle_remaining = 0

    def throttle(self, n):
        self.throttle_remaining += int(n)

    # ------------------------------------------------------------------
    def submit(self, rsl_spec, service):
        if self.throttle_remaining > 0:
            self.throttle_remaining -= 1
            raise CloudThrottled(
                f"{self.resource.name}: request rate limit exceeded; "
                f"retry after backoff")
        job = CloudJob(id=next(self._ids), service=service,
                       rsl=dict(rsl_spec), submitted_at=self.clock.now)
        self.jobs[job.id] = job
        if service == "fork":
            # Control-plane utility invocations run immediately on a
            # service container — no instance boot, no metering.
            self._run_fork(job)
        return job

    def _run_fork(self, job):
        executable = job.rsl["executable"]
        kwargs = _rsl_kwargs(job.rsl)
        kwargs.setdefault("directory", job.rsl.get("directory", "/"))
        try:
            self.resource.fork.run(executable, **kwargs)
            job.state = DONE
        except Exception as exc:  # noqa: BLE001 - script failure surface
            job.state = FAILED
            job.failure_reason = f"{type(exc).__name__}: {exc}"
        job.finished_at = self.clock.now

    # ------------------------------------------------------------------
    def advance(self, job):
        """Drive the provisioning → running → done state machine from
        the shared virtual clock (called on every poll)."""
        now = self.clock.now
        if job.state == PROVISIONING and job.service == "batch" \
                and now >= job.submitted_at + PROVISION_DELAY_S:
            self._start(job)
        if job.state == RUNNING \
                and now >= job.started_at + job.execution.runtime_s:
            self._finish(job)
        return job

    def _start(self, job):
        executable = job.rsl["executable"]
        app = self.resource.applications.get(executable)
        if app is None:
            job.state = FAILED
            job.failure_reason = f"No such executable {executable!r}"
            job.finished_at = self.clock.now
            return
        kwargs = _rsl_kwargs(job.rsl)
        directory = job.rsl.get("directory", "/")
        try:
            job.execution = app(self.resource, directory=directory,
                                **kwargs)
        except Exception as exc:  # noqa: BLE001 - app launch surface
            job.state = FAILED
            job.failure_reason = f"{type(exc).__name__}: {exc}"
            job.finished_at = self.clock.now
            return
        job.started_at = job.submitted_at + PROVISION_DELAY_S
        job.state = RUNNING

    def _finish(self, job):
        if job.execution.on_finish is not None:
            job.execution.on_finish()
        job.state = DONE
        job.finished_at = job.started_at + job.execution.runtime_s
        # Metered billing: instances are charged from boot, so the
        # provisioning window bills alongside the compute.
        cores = int(job.rsl.get("count", 1))
        billed_s = PROVISION_DELAY_S + job.execution.runtime_s
        job.cost_su = (cpu_hours(cores, billed_s)
                       * self.resource.machine.su_charge_factor)

    # ------------------------------------------------------------------
    def cancel(self, job):
        if job.state in (DONE, FAILED):
            return
        job.state = FAILED
        job.failure_reason = "cancelled by client"
        job.finished_at = self.clock.now

    def find_by_tag(self, tag):
        for job in self.jobs.values():
            if job.rsl.get("clientTag") == tag:
                return job
        return None

    def depth(self):
        return sum(1 for job in self.jobs.values()
                   if job.state in (PROVISIONING, RUNNING))

    def metered_cost(self, directory):
        """Total billed SUs for completed jobs under *directory*."""
        return sum(job.cost_su for job in self.jobs.values()
                   if job.state == DONE
                   and job.rsl.get("directory") == directory)


def _rsl_kwargs(rsl_spec):
    kwargs = {}
    for arg in rsl_spec.get("arguments", []) or []:
        text = str(arg)
        if "=" in text:
            key, _, value = text.partition("=")
            kwargs[key] = value
    return kwargs


def region_for(resource, clock):
    """The resource's :class:`CloudRegion`, created on first use."""
    region = getattr(resource, "cloud_region", None)
    if region is None:
        region = CloudRegion(resource, clock)
        resource.cloud_region = region
    return region


class CloudBatchBackend(ComputeBackend):
    name = BACKEND_CLOUD
    # Billing premium the broker folds into its reservation estimate:
    # provisioning overhead is charged, so estimates must cover it.
    cost_multiplier = 1.25

    # ------------------------------------------------------------------
    def _region(self, clients, resource_name):
        resource = clients.fabric.resource(resource_name)
        if not resource.reachable:
            raise ServiceUnreachable(
                f"{resource_name}: cloud batch endpoint did not respond")
        check_latency(resource, clients.fabric.clock.now)
        proxy = clients._require_proxy()
        try:
            clients.fabric.proxy_factory.verify(proxy)
        except CertificateInvalid as exc:
            raise CredentialError(str(exc))
        return region_for(resource, clients.fabric.clock)

    # ------------------------------------------------------------------
    def submit(self, clients, resource_name, rsl_spec, *,
               service="batch"):
        rsl_text = format_rsl(rsl_spec) if isinstance(rsl_spec, dict) \
            else str(rsl_spec)
        contact = f"{resource_name}/batch-{service}"
        argv = ["amp-cloudrun", "-r", contact, rsl_text]

        def action():
            region = self._region(clients, resource_name)
            job = region.submit(parse_rsl(rsl_text), service)
            return str(job.id)
        return clients._run(argv, action, resource=resource_name)

    def poll(self, clients, resource_name, job_id):
        argv = ["amp-cloudstat", "-r", resource_name, str(job_id)]

        def action():
            region = self._region(clients, resource_name)
            job = region.jobs.get(int(job_id))
            if job is None:
                raise PermanentGridError(
                    f"Unknown cloud job {job_id}")
            region.advance(job)
            state = job.reported_state
            if state == FAILED:
                return f"{state} {job.failure_reason}".strip()
            return state
        return clients._run(argv, action, resource=resource_name)

    def cancel(self, clients, resource_name, job_id):
        argv = ["amp-cloudcancel", "-r", resource_name, str(job_id)]

        def action():
            region = self._region(clients, resource_name)
            job = region.jobs.get(int(job_id))
            if job is None:
                raise PermanentGridError(
                    f"Unknown cloud job {job_id}")
            region.cancel(job)
            return "cancelled"
        return clients._run(argv, action, resource=resource_name)

    def lookup(self, clients, resource_name, tag):
        argv = ["amp-cloudlookup", "-r", resource_name, str(tag)]

        def action():
            region = self._region(clients, resource_name)
            job = region.find_by_tag(str(tag))
            if job is None:
                return ""
            return f"{job.id} {job.reported_state}"
        return clients._run(argv, action, resource=resource_name)

    # ------------------------------------------------------------------
    # Object storage (the region's staging bucket is modelled by the
    # resource filesystem — same quota semantics, same checksum shapes).
    # ------------------------------------------------------------------
    def stage_in(self, clients, resource_name, remote_path, data):
        argv = ["amp-cloudcopy", "file:///staging/upload",
                f"cloud://{resource_name}{remote_path}"]

        def action():
            import hashlib
            from ...hpc.filesystem import FilesystemError
            region = self._region(clients, resource_name)
            payload = data.encode("utf-8") if isinstance(data, str) \
                else bytes(data)
            try:
                region.resource.filesystem.write(remote_path, payload)
            except FilesystemError as exc:
                raise PermanentGridError(str(exc))
            return hashlib.md5(payload).hexdigest()
        return clients._run(argv, action, resource=resource_name)

    def stage_out(self, clients, resource_name, remote_path):
        argv = ["amp-cloudcopy",
                f"cloud://{resource_name}{remote_path}",
                "file:///staging/download"]
        holder = {}

        def action():
            from ...hpc.filesystem import FilesystemError
            region = self._region(clients, resource_name)
            try:
                holder["data"] = region.resource.filesystem.read(
                    remote_path)
            except FilesystemError as exc:
                raise PermanentGridError(str(exc))
            return f"{len(holder['data'])} bytes"
        result = clients._run(argv, action, resource=resource_name)
        result.data = holder.get("data")
        return result

    def stage_stat(self, clients, resource_name, remote_path):
        argv = ["amp-cloudcopy", "-stat",
                f"cloud://{resource_name}{remote_path}"]

        def action():
            import hashlib
            region = self._region(clients, resource_name)
            fs = region.resource.filesystem
            if not fs.exists(remote_path):
                return "absent"
            payload = fs.read(remote_path)
            return f"{len(payload)} {hashlib.md5(payload).hexdigest()}"
        return clients._run(argv, action, resource=resource_name)

    # ------------------------------------------------------------------
    def queue_status(self, clients, resource_name):
        argv = ["amp-cloudq", "-r", resource_name]

        def action():
            region = self._region(clients, resource_name)
            # Elastic capacity: depth counts in-flight jobs, but there
            # is no queue competition, so utilisation stays nominal.
            return f"{region.depth()} {0.05:.4f}"
        return clients._run(argv, action, resource=resource_name)

    # ------------------------------------------------------------------
    @staticmethod
    def estimate_wait_s(spec, *, queue_depth, utilisation):
        """Cloud wait is dominated by provisioning, not queueing: a
        fixed boot window plus a small control-plane term per in-flight
        job."""
        return PROVISION_DELAY_S + 5.0 * max(queue_depth, 0)

    def reported_cost_su(self, clients, resource_name, directory):
        try:
            resource = clients.fabric.resource(resource_name)
        except Exception:  # noqa: BLE001 - unknown resource: no meter
            return None
        region = getattr(resource, "cloud_region", None)
        if region is None:
            return None
        cost = region.metered_cost(directory)
        return cost if cost > 0 else None


CLOUD_BACKEND = register_backend(CloudBatchBackend())
