"""Backend registry: name → :class:`ComputeBackend` singleton.

The registry is the routing table the whole gateway shares.  Clients
resolve a machine's ``backend`` column through it per command; the
broker resolves it per candidate site; the ORM validates new
``MachineRecord`` rows against it at save time.  Registration happens
at import of :mod:`repro.grid.backends`, so the set of names is fixed
before any daemon starts.
"""

from __future__ import annotations

BACKEND_GRAM = "gram"
BACKEND_LOCAL = "local"
BACKEND_CLOUD = "cloud"

_REGISTRY = {}


def register_backend(backend):
    """Register a backend singleton under its ``name``; returns it so
    modules can register at class-instantiation time."""
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name):
    """The backend registered as *name*.

    Raises ``KeyError`` with the registered names for anything unknown
    — callers that want a friendlier message (the ORM validator, the
    clients' dispatcher) catch and rephrase.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            "no execution backend named %r (registered: %s)"
            % (name, ", ".join(backend_names())))


def backend_names():
    """Registered backend names, sorted for stable messages."""
    return sorted(_REGISTRY)
