"""Simulated Globus/CTSS grid middleware (DESIGN.md §3.2).

GRAM fork/batch job services, GridFTP staging, proxy certificates with
GridShib SAML attributes, CTSS capability registry, auditing, fault
injection, and — critically for fidelity to the paper — *command-line*
client wrappers the daemon shells through.
"""

from .audit import AuditLog, AuditRecord
from .backends import (BACKEND_CLOUD, BACKEND_GRAM, BACKEND_LOCAL,
                       CloudBatchBackend, ComputeBackend, GramBackend,
                       LocalPoolBackend, backend_names, get_backend,
                       register_backend)
from .breaker import (BREAKER_STATES, BreakerEvent, BreakerPolicy,
                      BreakerRegistry, CircuitBreaker)
from .certificates import (CertificateInvalid, CommunityCredential,
                           ProxyCertificate, ProxyFactory, SAMLAssertion)
from .clients import (EXIT_OK, EXIT_PERMANENT, EXIT_TRANSIENT,
                      CommandResult, GridClients)
from .ctss import (REQUIRED_CAPABILITIES, DeploymentError, SoftwareStack,
                   advertised_stack, verify_deployment)
from .errors import (CredentialError, GridError, OperationTimeout,
                     PermanentGridError, ServiceUnreachable,
                     SubmitRejected, TransferFault, TransientGridError,
                     TruncatedTransfer, UnknownResourceError)
from .fabric import GridFabric, build_fabric
from .faults import (CrashPoint, CrashSchedule, DaemonCrash,
                     FaultInjector, LatencyWindow, OutageRecord)
from .gram import (ACTIVE, DONE, FAILED, PENDING, UNSUBMITTED, AppExecution,
                   GramJob, GramService)
from .gridftp import GridFTPService, checksum
from .retry import (RetryEvent, RetryPolicy, RetryTracker,
                    classify_operation, deterministic_jitter)
from .rsl import RSLError, batch_spec, fork_spec, format_rsl, parse_rsl

__all__ = [
    "ACTIVE", "AppExecution", "AuditLog", "AuditRecord",
    "BACKEND_CLOUD", "BACKEND_GRAM", "BACKEND_LOCAL",
    "CloudBatchBackend", "ComputeBackend", "GramBackend",
    "LocalPoolBackend", "backend_names", "get_backend",
    "register_backend",
    "BREAKER_STATES", "BreakerEvent", "BreakerPolicy", "BreakerRegistry",
    "CertificateInvalid", "CircuitBreaker", "CommandResult",
    "CommunityCredential", "CrashPoint", "CrashSchedule",
    "CredentialError", "DONE", "DaemonCrash", "DeploymentError",
    "EXIT_OK", "EXIT_PERMANENT", "EXIT_TRANSIENT", "FAILED",
    "FaultInjector", "GramJob", "GramService", "GridClients", "GridError",
    "GridFTPService", "GridFabric", "LatencyWindow", "OperationTimeout",
    "OutageRecord", "PENDING", "PermanentGridError", "ProxyCertificate",
    "ProxyFactory", "REQUIRED_CAPABILITIES", "RSLError", "RetryEvent",
    "RetryPolicy", "RetryTracker", "SAMLAssertion", "ServiceUnreachable",
    "SoftwareStack", "SubmitRejected", "TransferFault",
    "TransientGridError", "TruncatedTransfer", "UNSUBMITTED",
    "UnknownResourceError", "advertised_stack", "batch_spec",
    "build_fabric", "checksum", "classify_operation",
    "deterministic_jitter", "fork_spec", "format_rsl", "parse_rsl",
    "verify_deployment",
]
