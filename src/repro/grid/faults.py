"""Fault injection for failure-handling experiments (bench C4).

Reproduces the §4.4 failure classes on demand:

- outages: a resource becomes unreachable for a window of virtual time
  (GRAM and GridFTP both fail transiently),
- transfer aborts: the next N GridFTP transfers on a resource abort,
- model failures: a staged output file is corrupted so result parsing
  fails (handled at the workflow layer, which holds the simulation).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class OutageRecord:
    resource: str
    start: float
    end: float


class FaultInjector:
    def __init__(self, fabric, clock):
        self.fabric = fabric
        self.clock = clock
        self.outages = []

    def outage(self, resource_name, *, start_in_s, duration_s):
        """Schedule an unreachability window for one resource."""
        resource = self.fabric.resource(resource_name)

        def go_down():
            resource.reachable = False

        def come_back():
            resource.reachable = True

        self.clock.schedule(start_in_s, go_down)
        self.clock.schedule(start_in_s + duration_s, come_back)
        record = OutageRecord(resource_name, self.clock.now + start_in_s,
                              self.clock.now + start_in_s + duration_s)
        self.outages.append(record)
        return record

    def abort_transfers(self, resource_name, n=1):
        """Make the next *n* GridFTP transfers abort mid-stream."""
        self.fabric.gridftp(resource_name).inject_transfer_faults(n)

    def corrupt_file(self, resource_name, remote_path,
                     garbage=b"NaN NaN garbage !!\n"):
        """Overwrite a staged file so output parsing fails (model
        failure)."""
        fs = self.fabric.resource(resource_name).filesystem
        fs.write(remote_path, garbage)
