"""Composable fault injection for failure-handling experiments.

Reproduces the §4.4 failure classes on demand, and extends them into a
harness every robustness policy (retry budgets, backoff, circuit
breakers) can be exercised against.  All shapes are driven by the shared
sim clock, so a fault *schedule* is deterministic and replayable:

- **outages** — a resource becomes unreachable for a window of virtual
  time (GRAM and GridFTP both fail transiently); ``permanent_outage``
  never ends until explicitly ``restore()``-d,
- **flapping** — a resource that cycles down/up repeatedly (grid
  weather), composed from outage windows,
- **latency spikes** — a window during which every *n*-th operation on
  the resource times out client-side,
- **transfer aborts** — the next N GridFTP transfers abort mid-stream,
- **partial transfers** — the next N GridFTP transfers truncate
  (checksum catches them; transient),
- **submit rejections** — the gatekeeper refuses the next N GRAM
  submissions (transient),
- **proxy faults** — the daemon's current proxy expires or is tampered
  with mid-run (the toolkit must self-heal by re-issuing),
- **model failures** — a staged output file is corrupted so result
  parsing fails (handled at the workflow layer, which holds the
  simulation),
- **daemon crashes** — deterministic :class:`CrashPoint`\\ s raise
  :class:`DaemonCrash` at the operation journal's two dangerous
  windows (after the intent write / after the remote side effect), so
  the kill-restart-resume property tests can kill the daemon at every
  journaled boundary and assert exactly-once semantics survive.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass


@dataclass
class OutageRecord:
    resource: str
    start: float
    end: float

    def overlaps(self, time):
        return self.start <= time <= self.end


class PermanentOutage:
    """Handle for an outage with no scheduled recovery."""

    def __init__(self, injector, resource_name, record):
        self._injector = injector
        self.resource_name = resource_name
        self.record = record
        self.restored = False

    def restore(self):
        """Bring the resource back (the operator fixed it)."""
        if self.restored:
            return
        resource = self._injector.fabric.resource(self.resource_name)
        resource.reachable = True
        self.record.end = self._injector.clock.now
        self.restored = True


class LatencyWindow:
    """Client-side timeouts during a congestion window.

    While active, every ``timeout_every``-th operation on the resource
    raises :class:`~repro.grid.errors.OperationTimeout` (1 = all of
    them).  The counter is deterministic — no randomness — so schedules
    replay identically.
    """

    def __init__(self, start, end, timeout_every=2):
        if timeout_every < 1:
            raise ValueError("timeout_every must be >= 1")
        self.start = start
        self.end = end
        self.timeout_every = int(timeout_every)
        self.operations_seen = 0
        self.timeouts_raised = 0

    def active(self, now):
        return self.start <= now < self.end

    def should_timeout(self):
        """Count one operation; True when it should time out."""
        self.operations_seen += 1
        if self.operations_seen % self.timeout_every == 0:
            self.timeouts_raised += 1
            return True
        return False


def check_latency(resource, now):
    """Service-side hook: raise if the resource's latency window says
    this operation times out.  Installed by ``latency_spike``."""
    window = getattr(resource, "latency_window", None)
    if window is not None and window.active(now) \
            and window.should_timeout():
        from .errors import OperationTimeout
        raise OperationTimeout(
            f"{resource.name}: operation timed out under load")


class DaemonCrash(BaseException):
    """The daemon process dies, *now*.

    Derives from :class:`BaseException` deliberately: a crash is not an
    error any ``except Exception`` recovery path may swallow — it must
    unwind the whole poll stack exactly the way ``kill -9`` discards it.
    The test harness catches it at top level and constructs a fresh
    daemon against the same database and fabric.
    """

    def __init__(self, op, when):
        super().__init__(f"daemon crashed {when} journaled {op}")
        self.op = op
        self.when = when


@dataclass
class CrashPoint:
    """One scheduled kill at a journaled operation boundary.

    ``when="before"`` fires after the journal intent is durably written
    but before the side-effecting grid call; ``when="after"`` fires
    after the remote side effect but before the journal commit lands.
    These are the two windows a crash can leave intent and reality
    disagreeing — everything else is ordinary at-rest state.  ``skip``
    lets the point target the N-th matching boundary; each point fires
    exactly once, so schedules replay deterministically.
    """

    op: str                   # "submit" | "stage_in" | ... | "*"
    when: str                 # "before" | "after"
    skip: int = 0
    hits: int = 0
    fired: bool = False

    def matches(self, op, when):
        return (self.op in ("*", op)) and self.when == when


class CrashSchedule:
    """The registry of pending crash points, consulted at every
    journaled boundary (installed on the fabric by the injector, so the
    workflow layer reaches it without new wiring)."""

    def __init__(self):
        self.points = []
        self.crashes = []          # (op, when) pairs that fired

    def add(self, point):
        self.points.append(point)
        return point

    def check(self, op, when):
        """Raise :class:`DaemonCrash` when a pending point matches."""
        for point in self.points:
            if point.fired or not point.matches(op, when):
                continue
            point.hits += 1
            if point.hits <= point.skip:
                continue
            point.fired = True
            self.crashes.append((op, when))
            raise DaemonCrash(op, when)

    @property
    def pending(self):
        return [p for p in self.points if not p.fired]


class FaultInjector:
    def __init__(self, fabric, clock):
        self.fabric = fabric
        self.clock = clock
        self.outages = []

    # ------------------------------------------------------------------
    # Reachability faults
    # ------------------------------------------------------------------
    def outage(self, resource_name, *, start_in_s, duration_s):
        """Schedule an unreachability window for one resource."""
        resource = self.fabric.resource(resource_name)

        def go_down():
            resource.reachable = False

        def come_back():
            resource.reachable = True

        self.clock.schedule(start_in_s, go_down)
        self.clock.schedule(start_in_s + duration_s, come_back)
        record = OutageRecord(resource_name, self.clock.now + start_in_s,
                              self.clock.now + start_in_s + duration_s)
        self.outages.append(record)
        return record

    def permanent_outage(self, resource_name, *, start_in_s=0.0):
        """The resource goes down and stays down until ``restore()``."""
        resource = self.fabric.resource(resource_name)

        def go_down():
            resource.reachable = False

        if start_in_s <= 0:
            go_down()
        else:
            self.clock.schedule(start_in_s, go_down)
        record = OutageRecord(resource_name, self.clock.now + start_in_s,
                              math.inf)
        self.outages.append(record)
        return PermanentOutage(self, resource_name, record)

    def flapping(self, resource_name, *, start_in_s, period_s,
                 down_s, cycles):
        """A resource that cycles down/up: *cycles* outages of
        ``down_s`` seconds, one every ``period_s`` seconds."""
        if down_s >= period_s:
            raise ValueError("down_s must be shorter than period_s")
        return [self.outage(resource_name,
                            start_in_s=start_in_s + i * period_s,
                            duration_s=down_s)
                for i in range(int(cycles))]

    def latency_spike(self, resource_name, *, start_in_s, duration_s,
                      timeout_every=2):
        """During the window, every ``timeout_every``-th operation on
        the resource times out client-side."""
        resource = self.fabric.resource(resource_name)
        window = LatencyWindow(self.clock.now + start_in_s,
                               self.clock.now + start_in_s + duration_s,
                               timeout_every=timeout_every)
        resource.latency_window = window
        return window

    def outage_windows(self, resource_name=None):
        """Injected outage windows, for asserting breaker event timing."""
        return [r for r in self.outages
                if resource_name is None or r.resource == resource_name]

    # ------------------------------------------------------------------
    # Daemon crashes (kill-restart-resume harness)
    # ------------------------------------------------------------------
    def crash_schedule(self):
        """The fabric-wide crash schedule, created on first use."""
        schedule = getattr(self.fabric, "crash_schedule", None)
        if schedule is None:
            schedule = CrashSchedule()
            self.fabric.crash_schedule = schedule
        return schedule

    def crash(self, op, *, when="before", skip=0):
        """Kill the daemon at the next matching journaled boundary.

        ``op`` is a journal operation class (``submit``/``stage_in``/
        ``stage_out``/``cancel``), a broker boundary (``reserve``), a
        lease-protocol boundary (``lease_claim``/``lease_renew``/
        ``takeover`` — the fleet's claim CAS, renewal CAS, and scoped
        journal-replay windows), or ``"*"``; ``when`` picks the window
        (see :class:`CrashPoint`); ``skip`` skips that many matching
        boundaries first.  Returns the :class:`CrashPoint` handle.
        """
        if when not in ("before", "after"):
            raise ValueError("when must be 'before' or 'after'")
        return self.crash_schedule().add(
            CrashPoint(op=op, when=when, skip=int(skip)))

    # ------------------------------------------------------------------
    # Transfer and submission faults
    # ------------------------------------------------------------------
    def abort_transfers(self, resource_name, n=1):
        """Make the next *n* GridFTP transfers abort mid-stream."""
        self.fabric.gridftp(resource_name).inject_transfer_faults(n)

    def truncate_transfers(self, resource_name, n=1):
        """Make the next *n* GridFTP transfers deliver partial data."""
        self.fabric.gridftp(resource_name).inject_partial_transfers(n)

    def reject_submissions(self, resource_name, n=1):
        """Make the gatekeeper refuse the next *n* GRAM submissions."""
        self.fabric.gram(resource_name).inject_submit_rejections(n)

    def throttle_cloud(self, resource_name, n=1):
        """Make the cloud region shed the next *n* submissions with a
        rate-limit rejection (the cloud-native transient shape)."""
        from .backends.cloud import region_for
        resource = self.fabric.resource(resource_name)
        region_for(resource, self.clock).throttle(n)

    # ------------------------------------------------------------------
    # Credential faults (the toolkit must self-heal: ensure_proxy
    # detects the bad proxy and re-issues)
    # ------------------------------------------------------------------
    def expire_proxy(self, clients):
        """Force the daemon's current proxy to expire mid-run."""
        proxy = clients.current_proxy
        if proxy is None:
            return None
        elapsed = max(0.0, self.clock.now - proxy.issued_at)
        draft = dataclasses.replace(proxy, lifetime_s=elapsed,
                                    signature="")
        signature = self.fabric.proxy_factory.credential.sign(
            draft.payload())
        expired = dataclasses.replace(draft, signature=signature)
        clients.current_proxy = expired
        return expired

    def tamper_proxy(self, clients):
        """Break the signature chain of the daemon's current proxy."""
        proxy = clients.current_proxy
        if proxy is None:
            return None
        tampered = dataclasses.replace(proxy, signature="tampered")
        clients.current_proxy = tampered
        return tampered

    # ------------------------------------------------------------------
    # Model failures
    # ------------------------------------------------------------------
    def corrupt_file(self, resource_name, remote_path,
                     garbage=b"NaN NaN garbage !!\n"):
        """Overwrite a staged file so output parsing fails (model
        failure)."""
        fs = self.fabric.resource(resource_name).filesystem
        fs.write(remote_path, garbage)
