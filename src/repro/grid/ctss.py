"""CTSS — the Coordinated TeraGrid Software and Services registry.

AMP's deployment strategy (§4.3) was to use *only* components every CTSS
resource provides (GRAM fork + scheduler services, GridFTP), so the model
"can be deployed on a TeraGrid resource as soon as the community account
has been authorized and no special resource provider dispensations are
required".  :func:`verify_deployment` is that check, and
``advertised_stack`` reproduces the per-resource differences (Ranger's
missing WS-GRAM) that drove production-machine selection.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The CTSS capability kits AMP relies on.
REQUIRED_CAPABILITIES = ("gram-fork", "gram-batch", "gridftp")


@dataclass(frozen=True)
class SoftwareStack:
    resource_name: str
    capabilities: tuple

    def provides(self, capability):
        return capability in self.capabilities


def advertised_stack(machine):
    """The CTSS stack a machine advertises, derived from its spec."""
    caps = ["gram-fork", "gram-batch", "gridftp", "login"]
    if machine.has_ws_gram:
        caps.append("ws-gram")
    if machine.scheduler_supports_chaining:
        caps.append("job-chaining")
    return SoftwareStack(machine.name, tuple(caps))


class DeploymentError(Exception):
    pass


def verify_deployment(machine, *, require_ws_gram=False,
                      require_chaining=False):
    """Check a machine offers everything an AMP deployment needs.

    Raises :class:`DeploymentError` naming the missing capability —
    the error an operator would hit before authorising the community
    account there.
    """
    stack = advertised_stack(machine)
    required = list(REQUIRED_CAPABILITIES)
    if require_ws_gram:
        required.append("ws-gram")
    if require_chaining:
        required.append("job-chaining")
    missing = [cap for cap in required if not stack.provides(cap)]
    if missing:
        raise DeploymentError(
            f"{machine.name} lacks CTSS capabilities: {missing}")
    return stack
