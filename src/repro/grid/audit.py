"""GRAM auditing — who did what, as which gateway user, on which system.

TeraGrid required end-to-end accountability for community-credential
gateways; every GRAM/GridFTP operation records the SAML-attributed
gateway user so resource providers can "disambiguate the real users
acting behind community credentials" (§3, and the Globus GRAM-auditing
acknowledgement).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AuditRecord:
    timestamp: float
    operation: str          # gram-submit | gram-poll | gram-cancel |
                            # gridftp-put | gridftp-get | fork-run
    resource: str
    gateway_user: str
    detail: str = ""
    success: bool = True


class AuditLog:
    def __init__(self):
        self.records = []

    def record(self, clock, operation, resource, gateway_user, *,
               detail="", success=True):
        entry = AuditRecord(timestamp=clock.now, operation=operation,
                            resource=resource, gateway_user=gateway_user,
                            detail=detail, success=success)
        self.records.append(entry)
        return entry

    # -- queries -----------------------------------------------------------
    def by_user(self, gateway_user):
        return [r for r in self.records if r.gateway_user == gateway_user]

    def by_operation(self, operation):
        return [r for r in self.records if r.operation == operation]

    def failures(self):
        return [r for r in self.records if not r.success]

    def distinct_users(self):
        return sorted({r.gateway_user for r in self.records})

    def __len__(self):
        return len(self.records)
