"""Grid error taxonomy.

The GridAMP daemon's failure-handling philosophy (§4.4) rests on three
categories, so the middleware surfaces them as three exception families:

- :class:`TransientGridError` — "anticipated transients, such as remote
  systems suddenly becoming unreachable": retried silently,
  administrators notified, users never bothered.
- :class:`PermanentGridError` — misconfiguration (bad credentials,
  unknown resource, quota): needs administrator action.
- Model failures are *not* grid errors; they surface from output parsing
  (:class:`~repro.science.astec.model.ModelOutputError`).
"""

from __future__ import annotations


class GridError(Exception):
    """Base class for all grid middleware errors."""


class TransientGridError(GridError):
    """Anticipated transient; safe to retry."""


class PermanentGridError(GridError):
    """Permanent failure; retrying will not help."""


class CredentialError(PermanentGridError):
    """Missing, expired, or unauthorised credential."""


class UnknownResourceError(PermanentGridError):
    """No such resource in the service registry."""


class ServiceUnreachable(TransientGridError):
    """The remote gatekeeper/GridFTP endpoint did not respond."""


class TransferFault(TransientGridError):
    """A GridFTP transfer aborted mid-stream."""


class TruncatedTransfer(TransferFault):
    """A GridFTP transfer delivered fewer bytes than the source holds
    (partial transfer; the checksum step catches it — retryable)."""


class SubmitRejected(TransientGridError):
    """The gatekeeper refused a GRAM submission (load shedding,
    transient middleware hiccough) — retryable."""


class OperationTimeout(TransientGridError):
    """An operation exceeded its client-side deadline during a latency
    spike — retryable."""


class CloudThrottled(TransientGridError):
    """A cloud batch endpoint shed the request (rate limit / quota
    pressure) — cloud middleware's native transient shape, retryable
    with backoff like any other anticipated transient."""
