"""Command-line grid client wrappers.

The paper is explicit that GridAMP does *not* use API bindings: it wraps
the Globus command-line clients, because "the daemon produces logs that
clearly highlight warnings and errors with the relevant command lines
displayed for failure cases.  To troubleshoot, a developer needs only to
open a new console [...] and copy-paste the line at the shell prompt to
retry the failed action."

:class:`GridClients` reproduces that interface exactly: every operation
is expressed as an argv vector, returns a :class:`CommandResult` with
exit code / stdout / stderr, and is recorded in a command log so failures
can be replayed verbatim (``rerun()``).

Execution substrates are pluggable: each machine's ``backend`` column
selects a registered :class:`~repro.grid.backends.ComputeBackend`
(Globus/GRAM, the local subprocess pool, a cloud batch service), and the
clients route every operation through it.  The Globus-named methods
(``globusrun``, ``globus_job_status``, ...) are kept as the historical
entry points and now route by backend too — a ``globusrun`` against a
cloud machine issues the cloud submission, exactly as the dispatcher
would for a re-run command line.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass

from .backends import get_backend
from .certificates import SAMLAssertion
from .errors import GridError, PermanentGridError, TransientGridError

EXIT_OK = 0
EXIT_TRANSIENT = 75     # EX_TEMPFAIL — retryable
EXIT_PERMANENT = 1


@dataclass
class CommandResult:
    argv: list
    exit_code: int
    stdout: str = ""
    stderr: str = ""

    @property
    def ok(self):
        return self.exit_code == EXIT_OK

    @property
    def transient(self):
        return self.exit_code == EXIT_TRANSIENT

    @property
    def command_line(self):
        return " ".join(shlex.quote(str(a)) for a in self.argv)


class GridClients:
    """The daemon host's installed grid client toolkit.

    Parameters
    ----------
    fabric:
        A :class:`GridFabric` (services per resource + proxy factory).
    gateway_name:
        SAML gateway identity attached to every derived proxy.
    """

    def __init__(self, fabric, gateway_name="AMP", breakers=None,
                 obs=None):
        self.fabric = fabric
        self.gateway_name = gateway_name
        self.current_proxy = None
        self.command_log = []
        #: Optional :class:`~repro.grid.breaker.BreakerRegistry`: when a
        #: resource's breaker is open, commands against it are suppressed
        #: client-side (synthetic transient, zero grid traffic).
        self.breakers = breakers
        self.suppressed_count = 0
        self._backend_names = {}
        #: Optional :class:`~repro.obs.Observability`: every executed or
        #: suppressed command is counted by program/backend/outcome and
        #: logged as a ``grid.command`` event carrying the ambient trace
        #: id, which is how a simulation's correlation id reaches grid
        #: traffic.
        self.obs = obs

    # ------------------------------------------------------------------
    # Backend routing
    # ------------------------------------------------------------------
    def backend_name(self, resource_name):
        """The backend name a resource routes through (``"gram"`` for
        anything the fabric does not know — the historical default, so
        unknown-resource errors surface from the gram path unchanged).

        Memoised per resource: a machine's backend is part of its frozen
        spec, and resolution sits on the per-command hot path.
        """
        cached = self._backend_names.get(resource_name)
        if cached is not None:
            return cached
        try:
            machine = self.fabric.resource(resource_name).machine
        except Exception:  # noqa: BLE001 - unknown resource
            return "gram"
        name = getattr(machine, "backend", "gram") or "gram"
        self._backend_names[resource_name] = name
        return name

    def _backend(self, resource_name):
        return get_backend(self.backend_name(resource_name))

    # ------------------------------------------------------------------
    def _run(self, argv, fn, resource=None):
        """Execute *fn*, mapping the error taxonomy to exit codes.

        When the command targets a resource whose circuit breaker is
        open, the command never reaches the grid: a synthetic transient
        result is logged instead.  Only commands that actually executed
        feed the breaker's failure/success counters.
        """
        if resource is not None and self.breakers is not None \
                and not self.breakers.allow(resource):
            result = CommandResult(
                argv, EXIT_TRANSIENT,
                stderr=(f"{resource}: suppressed while resource "
                        f"circuit is open"))
            self.suppressed_count += 1
            self.command_log.append(result)
            self._observe(result, resource, outcome="suppressed")
            return result
        try:
            stdout = fn()
            result = CommandResult(argv, EXIT_OK, stdout=stdout or "")
        except TransientGridError as exc:
            result = CommandResult(argv, EXIT_TRANSIENT, stderr=str(exc))
        except (PermanentGridError, GridError, KeyError) as exc:
            result = CommandResult(argv, EXIT_PERMANENT, stderr=str(exc))
        if resource is not None and self.breakers is not None:
            if result.ok:
                self.breakers.record_success(resource)
            elif result.transient:
                self.breakers.record_failure(resource)
        self.command_log.append(result)
        self._observe(result, resource)
        return result

    def _observe(self, result, resource, outcome=None):
        """Count and log one command against the observability layer."""
        if self.obs is None:
            return
        if outcome is None:
            outcome = "ok" if result.ok else (
                "transient" if result.transient else "permanent")
        program = str(result.argv[0]) if result.argv else "?"
        backend = self.backend_name(resource) if resource else "host"
        self.obs.metrics.counter(
            "grid_commands_total",
            help="Grid client commands by program and outcome").labels(
            program=program, backend=backend, outcome=outcome).inc()
        self.obs.events.emit(
            "grid.command", program=program, resource=resource or "",
            backend=backend, outcome=outcome,
            trace_id=self.obs.tracer.current_trace_id or "",
            command=("" if result.ok else result.command_line))

    def rerun(self, result: CommandResult):
        """Re-execute a logged command verbatim (the copy-paste retry)."""
        return self.dispatch(result.argv)

    def dispatch(self, argv):
        """Route an argv vector to the right wrapper — what the shell
        would do.  Unrecognised programs and command lines that cannot
        be replayed from the log come back as permanent failures with a
        plain-language message, never as a raised exception."""
        program = argv[0] if argv else ""
        handlers = {
            "grid-proxy-init": self._dispatch_proxy_init,
            "globusrun": self._dispatch_submit,
            "globusrun-ws": self._dispatch_submit,
            "amp-localrun": self._dispatch_submit,
            "amp-cloudrun": self._dispatch_submit,
            "globus-job-status": self._dispatch_job_status,
            "amp-localstat": self._dispatch_job_status,
            "amp-cloudstat": self._dispatch_job_status,
            "globus-job-cancel": self._dispatch_job_cancel,
            "amp-localcancel": self._dispatch_job_cancel,
            "amp-cloudcancel": self._dispatch_job_cancel,
            "globus-job-lookup": self._dispatch_job_lookup,
            "amp-locallookup": self._dispatch_job_lookup,
            "amp-cloudlookup": self._dispatch_job_lookup,
            "globus-url-copy": self._dispatch_url_copy,
            "amp-localcopy": self._dispatch_url_copy,
            "amp-cloudcopy": self._dispatch_url_copy,
            "globus-job-run": self._dispatch_queue_status,
            "amp-localq": self._dispatch_queue_status,
            "amp-cloudq": self._dispatch_queue_status,
        }
        if program not in handlers:
            return CommandResult(list(argv), EXIT_PERMANENT,
                                 stderr=f"command not found: {program}")
        try:
            return handlers[program](list(argv))
        except (ValueError, IndexError, KeyError,
                NotImplementedError) as exc:
            return CommandResult(
                list(argv), EXIT_PERMANENT,
                stderr=(f"{program}: this command line cannot be "
                        f"replayed from the log ({exc})"))

    # ------------------------------------------------------------------
    # grid-proxy-init (daemon-host credential management — backend
    # independent; every backend consumes the resulting proxy)
    # ------------------------------------------------------------------
    def grid_proxy_init(self, gateway_user, email="", lifetime_s=None):
        """Generate a derivative proxy with GridShib SAML extensions."""
        argv = ["grid-proxy-init", "-gateway-user", gateway_user]
        if lifetime_s:
            argv += ["-valid", str(int(lifetime_s // 60))]

        def action():
            saml = SAMLAssertion(gateway_name=self.gateway_name,
                                 gateway_user=gateway_user,
                                 user_email=email)
            self.current_proxy = self.fabric.proxy_factory.issue(
                saml, lifetime_s=lifetime_s)
            return f"proxy issued for {self.current_proxy.subject}"
        return self._run(argv, action)

    def _dispatch_proxy_init(self, argv):
        user = argv[argv.index("-gateway-user") + 1]
        return self.grid_proxy_init(user)

    def ensure_proxy(self, gateway_user, email="", *,
                     min_remaining_s=3600.0):
        """Re-issue the proxy when absent, near expiry, or for another
        user.

        The daemon calls this before acting on behalf of a user: proxies
        are short-lived by design, and every request must be SAML-
        attributed to the *right* gateway user.  A proxy that expired or
        was damaged mid-run (fault injection, clock skew) is detected
        here and silently replaced — credential trouble must self-heal
        before it can surface as a permanent failure.
        """
        proxy = self.current_proxy
        now = self.fabric.clock.now
        if (proxy is not None
                and proxy.saml.gateway_user == gateway_user
                and proxy.expires_at - now >= min_remaining_s
                and self._proxy_verifies(proxy)):
            return CommandResult(["grid-proxy-info"], EXIT_OK,
                                 stdout="proxy still valid")
        return self.grid_proxy_init(gateway_user, email)

    def _proxy_verifies(self, proxy):
        from .certificates import CertificateInvalid
        try:
            self.fabric.proxy_factory.verify(proxy)
        except CertificateInvalid:
            return False
        return True

    def _require_proxy(self):
        if self.current_proxy is None:
            raise PermanentGridError(
                "No proxy: run grid-proxy-init first")
        return self.current_proxy

    # ------------------------------------------------------------------
    # Job submission
    # ------------------------------------------------------------------
    def submit_job(self, resource_name, rsl_spec, *, service="batch"):
        """Submit a job through the machine's backend; stdout is the
        backend job id."""
        return self._backend(resource_name).submit(
            self, resource_name, rsl_spec, service=service)

    #: Historical Globus-named entry point (same routing).
    globusrun = submit_job

    def _dispatch_submit(self, argv):
        flag = "-F" if "-F" in argv else "-r"
        contact = argv[argv.index(flag) + 1]
        for separator in ("/jobmanager-", "/pool-", "/batch-"):
            if separator in contact:
                resource_name, _, manager = contact.partition(separator)
                break
        else:
            resource_name, manager = contact, "batch"
        return self.submit_job(resource_name, argv[-1],
                               service=manager or "batch")

    # ------------------------------------------------------------------
    # Queue telemetry
    # ------------------------------------------------------------------
    def queue_status(self, resource_name):
        """Queue telemetry through the machine's backend:
        ``"<depth> <utilisation>"``."""
        return self._backend(resource_name).queue_status(
            self, resource_name)

    def _dispatch_queue_status(self, argv):
        if "-r" in argv:
            contact = argv[argv.index("-r") + 1]
        else:
            contact = argv[1]
        resource_name = contact.partition("/")[0]
        return self.queue_status(resource_name)

    # ------------------------------------------------------------------
    # Job polling / lookup / cancellation
    # ------------------------------------------------------------------
    def job_status(self, resource_name, job_id):
        """Poll one job; stdout is a GRAM-vocabulary state, with the
        failure reason appended after ``FAILED``."""
        return self._backend(resource_name).poll(
            self, resource_name, job_id)

    globus_job_status = job_status

    def _dispatch_job_status(self, argv):
        return self.job_status(argv[argv.index("-r") + 1], argv[-1])

    def job_lookup(self, resource_name, tag):
        """Recover a backend job id by its submitted ``clientTag``.

        The reconciliation primitive: ``stdout`` is ``"<id> <state>"``
        when a job carrying the tag exists on the job manager, or empty
        when the submission provably never happened.  A transient result
        (resource unreachable, breaker open) proves nothing — the caller
        must hold the affected simulation rather than guess.
        """
        return self._backend(resource_name).lookup(
            self, resource_name, tag)

    globus_job_lookup = job_lookup

    def _dispatch_job_lookup(self, argv):
        return self.job_lookup(argv[argv.index("-r") + 1], argv[-1])

    def job_cancel(self, resource_name, job_id):
        return self._backend(resource_name).cancel(
            self, resource_name, job_id)

    globus_job_cancel = job_cancel

    def _dispatch_job_cancel(self, argv):
        return self.job_cancel(argv[argv.index("-r") + 1], argv[-1])

    # ------------------------------------------------------------------
    # File staging
    # ------------------------------------------------------------------
    def stage_in(self, resource_name, remote_path, data):
        """local → remote (upload marshaled input files)."""
        return self._backend(resource_name).stage_in(
            self, resource_name, remote_path, data)

    def stage_out(self, resource_name, remote_path):
        """remote → local; payload returned on ``result.data``."""
        return self._backend(resource_name).stage_out(
            self, resource_name, remote_path)

    def stage_stat(self, resource_name, remote_path):
        """Size/digest probe of a remote file: ``"<size> <md5>"`` or
        ``"absent"`` — how reconciliation re-verifies a transfer whose
        commit record was lost in a crash."""
        return self._backend(resource_name).stage_stat(
            self, resource_name, remote_path)

    def _dispatch_url_copy(self, argv):
        def split_url(url):
            for scheme in ("gsiftp://", "local://", "cloud://"):
                if url.startswith(scheme):
                    rest = url[len(scheme):]
                    resource_name, _, path = rest.partition("/")
                    return resource_name, "/" + path
            return None
        src, dst = argv[-2], argv[-1]
        if "-stat" in argv:
            resource_name, path = split_url(argv[-1])
            return self.stage_stat(resource_name, path)
        if split_url(src) is not None:
            resource_name, path = split_url(src)
            return self.stage_out(resource_name, path)
        raise NotImplementedError(
            "uploads need the original file contents, which the "
            "command log does not keep")

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def reported_cost_su(self, resource_name, directory):
        """Backend-metered SU cost of the work under *directory*, or
        ``None`` when the machine's backend does not meter usage."""
        return self._backend(resource_name).reported_cost_su(
            self, resource_name, directory)

    # ------------------------------------------------------------------
    def failed_commands(self):
        return [r for r in self.command_log if not r.ok]
