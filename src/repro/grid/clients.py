"""Command-line Globus client wrappers.

The paper is explicit that GridAMP does *not* use API bindings: it wraps
the Globus command-line clients, because "the daemon produces logs that
clearly highlight warnings and errors with the relevant command lines
displayed for failure cases.  To troubleshoot, a developer needs only to
open a new console [...] and copy-paste the line at the shell prompt to
retry the failed action."

:class:`GridClients` reproduces that interface exactly: every operation
is expressed as an argv vector, returns a :class:`CommandResult` with
exit code / stdout / stderr, and is recorded in a command log so failures
can be replayed verbatim (``rerun()``).
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass

from .certificates import SAMLAssertion
from .errors import GridError, PermanentGridError, TransientGridError
from .gram import FAILED
from .rsl import format_rsl, parse_rsl

EXIT_OK = 0
EXIT_TRANSIENT = 75     # EX_TEMPFAIL — retryable
EXIT_PERMANENT = 1


@dataclass
class CommandResult:
    argv: list
    exit_code: int
    stdout: str = ""
    stderr: str = ""

    @property
    def ok(self):
        return self.exit_code == EXIT_OK

    @property
    def transient(self):
        return self.exit_code == EXIT_TRANSIENT

    @property
    def command_line(self):
        return " ".join(shlex.quote(str(a)) for a in self.argv)


class GridClients:
    """The daemon host's installed Globus client toolkit.

    Parameters
    ----------
    fabric:
        A :class:`GridFabric` (services per resource + proxy factory).
    gateway_name:
        SAML gateway identity attached to every derived proxy.
    """

    def __init__(self, fabric, gateway_name="AMP", breakers=None,
                 obs=None):
        self.fabric = fabric
        self.gateway_name = gateway_name
        self.current_proxy = None
        self.command_log = []
        #: Optional :class:`~repro.grid.breaker.BreakerRegistry`: when a
        #: resource's breaker is open, commands against it are suppressed
        #: client-side (synthetic transient, zero grid traffic).
        self.breakers = breakers
        self.suppressed_count = 0
        #: Optional :class:`~repro.obs.Observability`: every executed or
        #: suppressed command is counted by program/outcome and logged as
        #: a ``grid.command`` event carrying the ambient trace id, which
        #: is how a simulation's correlation id reaches grid traffic.
        self.obs = obs

    # ------------------------------------------------------------------
    def _run(self, argv, fn, resource=None):
        """Execute *fn*, mapping the error taxonomy to exit codes.

        When the command targets a resource whose circuit breaker is
        open, the command never reaches the grid: a synthetic transient
        result is logged instead.  Only commands that actually executed
        feed the breaker's failure/success counters.
        """
        if resource is not None and self.breakers is not None \
                and not self.breakers.allow(resource):
            result = CommandResult(
                argv, EXIT_TRANSIENT,
                stderr=(f"{resource}: suppressed while resource "
                        f"circuit is open"))
            self.suppressed_count += 1
            self.command_log.append(result)
            self._observe(result, resource, outcome="suppressed")
            return result
        try:
            stdout = fn()
            result = CommandResult(argv, EXIT_OK, stdout=stdout or "")
        except TransientGridError as exc:
            result = CommandResult(argv, EXIT_TRANSIENT, stderr=str(exc))
        except (PermanentGridError, GridError, KeyError) as exc:
            result = CommandResult(argv, EXIT_PERMANENT, stderr=str(exc))
        if resource is not None and self.breakers is not None:
            if result.ok:
                self.breakers.record_success(resource)
            elif result.transient:
                self.breakers.record_failure(resource)
        self.command_log.append(result)
        self._observe(result, resource)
        return result

    def _observe(self, result, resource, outcome=None):
        """Count and log one command against the observability layer."""
        if self.obs is None:
            return
        if outcome is None:
            outcome = "ok" if result.ok else (
                "transient" if result.transient else "permanent")
        program = str(result.argv[0]) if result.argv else "?"
        self.obs.metrics.counter(
            "grid_commands_total",
            help="Grid client commands by program and outcome").labels(
            program=program, outcome=outcome).inc()
        self.obs.events.emit(
            "grid.command", program=program, resource=resource or "",
            outcome=outcome,
            trace_id=self.obs.tracer.current_trace_id or "",
            command=("" if result.ok else result.command_line))

    def rerun(self, result: CommandResult):
        """Re-execute a logged command verbatim (the copy-paste retry)."""
        return self.dispatch(result.argv)

    def dispatch(self, argv):
        """Route an argv vector to the right wrapper — what the shell
        would do."""
        program = argv[0]
        handlers = {
            "grid-proxy-init": self._dispatch_proxy_init,
            "globusrun": self._dispatch_globusrun,
            "globusrun-ws": self._dispatch_globusrun,
            "globus-job-status": self._dispatch_job_status,
            "globus-job-cancel": self._dispatch_job_cancel,
            "globus-job-lookup": self._dispatch_job_lookup,
            "globus-url-copy": self._dispatch_url_copy,
        }
        if program not in handlers:
            return CommandResult(list(argv), EXIT_PERMANENT,
                                 stderr=f"command not found: {program}")
        return handlers[program](list(argv))

    # ------------------------------------------------------------------
    # grid-proxy-init
    # ------------------------------------------------------------------
    def grid_proxy_init(self, gateway_user, email="", lifetime_s=None):
        """Generate a derivative proxy with GridShib SAML extensions."""
        argv = ["grid-proxy-init", "-gateway-user", gateway_user]
        if lifetime_s:
            argv += ["-valid", str(int(lifetime_s // 60))]

        def action():
            saml = SAMLAssertion(gateway_name=self.gateway_name,
                                 gateway_user=gateway_user,
                                 user_email=email)
            self.current_proxy = self.fabric.proxy_factory.issue(
                saml, lifetime_s=lifetime_s)
            return f"proxy issued for {self.current_proxy.subject}"
        return self._run(argv, action)

    def _dispatch_proxy_init(self, argv):
        user = argv[argv.index("-gateway-user") + 1]
        return self.grid_proxy_init(user)

    def ensure_proxy(self, gateway_user, email="", *,
                     min_remaining_s=3600.0):
        """Re-issue the proxy when absent, near expiry, or for another
        user.

        The daemon calls this before acting on behalf of a user: proxies
        are short-lived by design, and every request must be SAML-
        attributed to the *right* gateway user.  A proxy that expired or
        was damaged mid-run (fault injection, clock skew) is detected
        here and silently replaced — credential trouble must self-heal
        before it can surface as a permanent failure.
        """
        proxy = self.current_proxy
        now = self.fabric.clock.now
        if (proxy is not None
                and proxy.saml.gateway_user == gateway_user
                and proxy.expires_at - now >= min_remaining_s
                and self._proxy_verifies(proxy)):
            return CommandResult(["grid-proxy-info"], EXIT_OK,
                                 stdout="proxy still valid")
        return self.grid_proxy_init(gateway_user, email)

    def _proxy_verifies(self, proxy):
        from .certificates import CertificateInvalid
        try:
            self.fabric.proxy_factory.verify(proxy)
        except CertificateInvalid:
            return False
        return True

    def _require_proxy(self):
        if self.current_proxy is None:
            raise PermanentGridError(
                "No proxy: run grid-proxy-init first")
        return self.current_proxy

    # ------------------------------------------------------------------
    # globusrun (submit)
    # ------------------------------------------------------------------
    def _gram_program(self, resource_name):
        """Prefer WS-GRAM where the resource advertises it.

        The paper targeted Kraken partly for its WS-GRAM support and
        noted Ranger's lack of it; the client toolkit mirrors that by
        selecting ``globusrun-ws`` vs pre-WS ``globusrun`` per resource.
        """
        try:
            machine = self.fabric.resource(resource_name).machine
        except Exception:  # noqa: BLE001 - unknown resource: let the
            return "globusrun"         # submission path report it
        return "globusrun-ws" if machine.has_ws_gram else "globusrun"

    def globusrun(self, resource_name, rsl_spec, *, service="batch"):
        rsl_text = format_rsl(rsl_spec) if isinstance(rsl_spec, dict) \
            else str(rsl_spec)
        contact = f"{resource_name}/jobmanager-{service}"
        program = self._gram_program(resource_name)
        argv = ([program, "-submit", "-F", contact, rsl_text]
                if program == "globusrun-ws"
                else [program, "-b", "-r", contact, rsl_text])

        def action():
            proxy = self._require_proxy()
            gram = self.fabric.gram(resource_name)
            spec = parse_rsl(rsl_text)
            if "arguments" in spec:
                spec["arguments"] = spec["arguments"].split()
            job_id = gram.submit(proxy, spec, service=service)
            return str(job_id)
        return self._run(argv, action, resource=resource_name)

    def _dispatch_globusrun(self, argv):
        flag = "-F" if "-F" in argv else "-r"
        contact = argv[argv.index(flag) + 1]
        resource_name, _, manager = contact.partition("/jobmanager-")
        return self.globusrun(resource_name, argv[-1],
                              service=manager or "batch")

    # ------------------------------------------------------------------
    # queue status (qstat over the fork service)
    # ------------------------------------------------------------------
    def queue_status(self, resource_name):
        """Remote queue telemetry: ``"<depth> <utilisation>"``.

        Models running ``qstat`` on the login node through the fork
        service — how an operator (or the daemon) reads congestion
        without any scheduler API.
        """
        argv = ["globus-job-run", f"{resource_name}/jobmanager-fork",
                "/usr/bin/qstat", "-Q"]

        def action():
            proxy = self._require_proxy()
            resource = self.fabric.resource(resource_name)
            if not resource.reachable:
                raise TransientGridError(
                    f"{resource_name}: gatekeeper did not respond")
            from .certificates import CertificateInvalid
            try:
                self.fabric.proxy_factory.verify(proxy)
            except CertificateInvalid as exc:
                raise PermanentGridError(str(exc))
            scheduler = resource.scheduler
            return (f"{scheduler.queue_depth()} "
                    f"{scheduler.utilisation:.4f}")
        return self._run(argv, action, resource=resource_name)

    # ------------------------------------------------------------------
    # globus-job-status (poll)
    # ------------------------------------------------------------------
    def globus_job_status(self, resource_name, gram_job_id):
        argv = ["globus-job-status", "-r", resource_name,
                str(gram_job_id)]

        def action():
            proxy = self._require_proxy()
            gram = self.fabric.gram(resource_name)
            state = gram.poll(proxy, int(gram_job_id))
            if state == FAILED:
                reason = gram.failure_reason(int(gram_job_id))
                return f"{state} {reason}".strip()
            return state
        return self._run(argv, action, resource=resource_name)

    def _dispatch_job_status(self, argv):
        return self.globus_job_status(argv[argv.index("-r") + 1], argv[-1])

    def globus_job_lookup(self, resource_name, tag):
        """Recover a GRAM job id by its submitted ``clientTag``.

        The reconciliation primitive: ``stdout`` is ``"<id> <state>"``
        when a job carrying the tag exists on the job manager, or empty
        when the submission provably never happened.  A transient result
        (resource unreachable, breaker open) proves nothing — the caller
        must hold the affected simulation rather than guess.
        """
        argv = ["globus-job-lookup", "-r", resource_name, str(tag)]

        def action():
            proxy = self._require_proxy()
            gram = self.fabric.gram(resource_name)
            gram_job = gram.find_by_tag(proxy, str(tag))
            if gram_job is None:
                return ""
            return f"{gram_job.id} {gram_job.state}"
        return self._run(argv, action, resource=resource_name)

    def _dispatch_job_lookup(self, argv):
        return self.globus_job_lookup(argv[argv.index("-r") + 1],
                                      argv[-1])

    def globus_job_cancel(self, resource_name, gram_job_id):
        argv = ["globus-job-cancel", "-r", resource_name, str(gram_job_id)]

        def action():
            proxy = self._require_proxy()
            self.fabric.gram(resource_name).cancel(proxy, int(gram_job_id))
            return "cancelled"
        return self._run(argv, action, resource=resource_name)

    def _dispatch_job_cancel(self, argv):
        return self.globus_job_cancel(argv[argv.index("-r") + 1], argv[-1])

    # ------------------------------------------------------------------
    # globus-url-copy (GridFTP)
    # ------------------------------------------------------------------
    def stage_in(self, resource_name, remote_path, data):
        """local → remote (upload marshaled input files)."""
        argv = ["globus-url-copy", "file:///staging/upload",
                f"gsiftp://{resource_name}{remote_path}"]

        def action():
            proxy = self._require_proxy()
            digest = self.fabric.gridftp(resource_name).put(
                proxy, remote_path, data)
            return digest
        return self._run(argv, action, resource=resource_name)

    def stage_out(self, resource_name, remote_path):
        """remote → local; payload returned on ``result.data``."""
        argv = ["globus-url-copy",
                f"gsiftp://{resource_name}{remote_path}",
                "file:///staging/download"]
        holder = {}

        def action():
            proxy = self._require_proxy()
            holder["data"] = self.fabric.gridftp(resource_name).get(
                proxy, remote_path)
            return f"{len(holder['data'])} bytes"
        result = self._run(argv, action, resource=resource_name)
        result.data = holder.get("data")
        return result

    def stage_stat(self, resource_name, remote_path):
        """Size/digest probe of a remote file: ``"<size> <md5>"`` or
        ``"absent"`` — how reconciliation re-verifies a transfer whose
        commit record was lost in a crash."""
        argv = ["globus-url-copy", "-stat",
                f"gsiftp://{resource_name}{remote_path}"]

        def action():
            proxy = self._require_proxy()
            return self.fabric.gridftp(resource_name).stat(
                proxy, remote_path)
        return self._run(argv, action, resource=resource_name)

    def _dispatch_url_copy(self, argv):
        src, dst = argv[-2], argv[-1]
        if "-stat" in argv:
            rest = argv[-1][len("gsiftp://"):]
            resource_name, _, path = rest.partition("/")
            return self.stage_stat(resource_name, "/" + path)
        if src.startswith("gsiftp://"):
            rest = src[len("gsiftp://"):]
            resource_name, _, path = rest.partition("/")
            return self.stage_out(resource_name, "/" + path)
        raise NotImplementedError(
            "dispatch of uploads requires the original payload")

    # ------------------------------------------------------------------
    def failed_commands(self):
        return [r for r in self.command_log if not r.ok]
