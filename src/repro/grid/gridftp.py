"""GridFTP file staging.

The daemon stages small text inputs in and tarballs out; transfers verify
the proxy, respect resource reachability, compute checksums, and can be
made to abort mid-stream by the fault injector (a *transient* failure the
daemon must retry silently).
"""

from __future__ import annotations

import hashlib

from .certificates import CertificateInvalid
from .errors import (CredentialError, ServiceUnreachable, TransferFault,
                     TruncatedTransfer)
from .faults import check_latency


class GridFTPService:
    def __init__(self, resource, proxy_factory, clock, audit):
        self.resource = resource
        self.proxy_factory = proxy_factory
        self.clock = clock
        self.audit = audit
        #: Fault injection: abort the next N transfers / truncate the
        #: next N transfers (checksum verification catches the latter).
        self._faults_pending = 0
        self._truncations_pending = 0
        self.transfer_count = 0

    def inject_transfer_faults(self, n):
        self._faults_pending += int(n)

    def inject_partial_transfers(self, n):
        self._truncations_pending += int(n)

    # ------------------------------------------------------------------
    def _check_access(self, proxy, operation, detail=""):
        if not self.resource.reachable:
            self.audit.record(self.clock, operation, self.resource.name,
                              getattr(proxy.saml, "gateway_user", "?"),
                              detail="unreachable", success=False)
            raise ServiceUnreachable(
                f"{self.resource.name}: GridFTP endpoint did not respond")
        check_latency(self.resource, self.clock.now)
        try:
            self.proxy_factory.verify(proxy)
        except CertificateInvalid as exc:
            raise CredentialError(str(exc))
        if self._faults_pending > 0:
            self._faults_pending -= 1
            self.audit.record(self.clock, operation, self.resource.name,
                              proxy.saml.gateway_user,
                              detail=f"{detail} (aborted)", success=False)
            raise TransferFault(
                f"{self.resource.name}: transfer aborted mid-stream")

    def _check_complete(self, proxy, operation, remote_path, data):
        """Partial-transfer injection: the byte stream ends early and
        the post-transfer size/checksum comparison fails."""
        if self._truncations_pending > 0:
            self._truncations_pending -= 1
            delivered = len(data) // 2
            self.audit.record(self.clock, operation, self.resource.name,
                              proxy.saml.gateway_user,
                              detail=(f"{remote_path} truncated after "
                                      f"{delivered} bytes"),
                              success=False)
            raise TruncatedTransfer(
                f"{self.resource.name}: transfer truncated after "
                f"{delivered} of {len(data)} bytes")

    # ------------------------------------------------------------------
    def put(self, proxy, remote_path, data):
        """Upload bytes/str to the resource filesystem."""
        from ..hpc.filesystem import FilesystemError
        from .errors import PermanentGridError
        self._check_access(proxy, "gridftp-put", remote_path)
        if isinstance(data, str):
            data = data.encode("utf-8")
        self._check_complete(proxy, "gridftp-put", remote_path, data)
        try:
            self.resource.filesystem.write(remote_path, data)
        except FilesystemError as exc:
            # Quota exhaustion / missing directory: not retryable.
            raise PermanentGridError(str(exc))
        self.transfer_count += 1
        self.audit.record(self.clock, "gridftp-put", self.resource.name,
                          proxy.saml.gateway_user,
                          detail=f"{remote_path} ({len(data)} bytes)")
        return checksum(data)

    def get(self, proxy, remote_path):
        """Download bytes from the resource filesystem."""
        from ..hpc.filesystem import FilesystemError
        from .errors import PermanentGridError
        self._check_access(proxy, "gridftp-get", remote_path)
        try:
            data = self.resource.filesystem.read(remote_path)
        except FilesystemError as exc:
            raise PermanentGridError(str(exc))
        self._check_complete(proxy, "gridftp-get", remote_path, data)
        self.transfer_count += 1
        self.audit.record(self.clock, "gridftp-get", self.resource.name,
                          proxy.saml.gateway_user,
                          detail=f"{remote_path} ({len(data)} bytes)")
        return data

    def exists(self, proxy, remote_path):
        self._check_access(proxy, "gridftp-stat", remote_path)
        return self.resource.filesystem.exists(remote_path)

    def stat(self, proxy, remote_path):
        """``"<size> <md5>"`` of a remote file, or ``"absent"``.

        Restart reconciliation re-verifies a possibly-partial transfer
        against the journaled payload size/digest: a matching stat
        proves the upload landed intact before the crash; ``absent`` (or
        a mismatch) proves it must be re-issued.
        """
        self._check_access(proxy, "gridftp-stat", remote_path)
        if not self.resource.filesystem.exists(remote_path):
            self.audit.record(self.clock, "gridftp-stat",
                              self.resource.name,
                              proxy.saml.gateway_user,
                              detail=f"{remote_path} absent")
            return "absent"
        data = self.resource.filesystem.read(remote_path)
        self.audit.record(self.clock, "gridftp-stat", self.resource.name,
                          proxy.saml.gateway_user,
                          detail=f"{remote_path} ({len(data)} bytes)")
        return f"{len(data)} {checksum(data)}"


def checksum(data):
    return hashlib.md5(data).hexdigest()
