"""Retry budgets with exponential backoff and deterministic jitter.

The paper's §4.4 taxonomy retries anticipated transients *silently* —
but silently must not mean *forever*.  A resource that never comes back
would otherwise be re-polled every cycle until the end of time,
indistinguishable from a healthy one.  This module bounds that loop:

- every grid operation class (submit, poll, transfer, proxy, qstat)
  carries a per-simulation **retry budget**,
- each failed attempt schedules the next retry with **exponential
  backoff** capped at a maximum delay,
- the jitter term is **deterministic** — a hash of ``(key, attempt)``
  rather than a wall-clock random draw — so a fault schedule replayed
  against the same simulation ids produces byte-identical retry
  timestamps (regression-tested),
- exhausting the budget escalates the transient to a HOLD with a
  user-readable reason (the workflow layer owns the wording; no grid
  jargon ever reaches users).

All timestamps are virtual: the :class:`RetryTracker` reads the shared
:class:`~repro.hpc.simclock.SimClock` and never touches wall-clock time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

#: Operation classes a retry budget is tracked for, derived from the
#: command-line program the daemon shelled through (clients.py keeps the
#: paper's copy-pasteable argv discipline, so argv[0] is authoritative).
OP_PROXY = "proxy"
OP_SUBMIT = "submit"
OP_POLL = "poll"
OP_CANCEL = "cancel"
OP_TRANSFER = "transfer"
OP_QSTAT = "qstat"
OP_OTHER = "other"

_PROGRAM_OPS = {
    "grid-proxy-init": OP_PROXY,
    "grid-proxy-info": OP_PROXY,
    "globusrun": OP_SUBMIT,
    "globusrun-ws": OP_SUBMIT,
    "globus-job-status": OP_POLL,
    "globus-job-cancel": OP_CANCEL,
    "globus-job-lookup": OP_POLL,
    "globus-url-copy": OP_TRANSFER,
    "globus-job-run": OP_QSTAT,
    # Local-pool backend vocabulary.
    "amp-localrun": OP_SUBMIT,
    "amp-localstat": OP_POLL,
    "amp-localcancel": OP_CANCEL,
    "amp-locallookup": OP_POLL,
    "amp-localcopy": OP_TRANSFER,
    "amp-localq": OP_QSTAT,
    # Cloud-batch backend vocabulary.
    "amp-cloudrun": OP_SUBMIT,
    "amp-cloudstat": OP_POLL,
    "amp-cloudcancel": OP_CANCEL,
    "amp-cloudlookup": OP_POLL,
    "amp-cloudcopy": OP_TRANSFER,
    "amp-cloudq": OP_QSTAT,
}


def classify_operation(argv):
    """Map a client argv vector to its retry-budget operation class."""
    if not argv:
        return OP_OTHER
    return _PROGRAM_OPS.get(str(argv[0]), OP_OTHER)


def deterministic_jitter(key, attempt):
    """A reproducible uniform draw in ``[0, 1)`` keyed on the retry.

    Hash-derived rather than PRNG-drawn: replaying the same fault
    schedule against the same simulation produces the same jitter, which
    is what makes retry timelines regression-testable.
    """
    digest = hashlib.md5(f"{key}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """Budget and backoff parameters for one operation class.

    ``max_attempts`` counts *consecutive* transient failures of one
    operation class on one simulation; any success resets the count.
    """

    max_attempts: int = 6
    base_delay_s: float = 300.0
    multiplier: float = 2.0
    max_delay_s: float = 7200.0
    jitter_fraction: float = 0.1

    def delay_for(self, attempt, key=""):
        """Backoff delay before retry number ``attempt + 1``."""
        exponent = max(int(attempt) - 1, 0)
        raw = min(self.base_delay_s * self.multiplier ** exponent,
                  self.max_delay_s)
        return raw * (1.0 + self.jitter_fraction
                      * deterministic_jitter(key, attempt))

    def exhausted(self, attempt):
        return attempt >= self.max_attempts


@dataclass(frozen=True)
class RetryEvent:
    """One recorded backoff decision (the determinism-test surface)."""

    simulation_id: int
    operation: str
    attempt: int
    failed_at: float
    not_before: float


@dataclass
class RetryTracker:
    """Computes and records backoff decisions against the sim clock.

    The per-simulation attempt counters themselves persist on the
    ``Simulation`` row (``retry_counts``/``retry_not_before``) so a
    daemon restart inherits them; the tracker holds the policy and an
    in-memory event log for tests and operator tooling.  On restart the
    daemon's reconciliation sweep calls :meth:`rehydrate` with the
    surviving rows, so the post-crash tracker reports the same
    escalation state (attempt counts, pending backoff deadlines) the
    pre-crash one did instead of silently starting from zero.
    """

    policy: RetryPolicy
    clock: object
    events: list = field(default_factory=list)
    #: Optional :class:`~repro.obs.Observability`; when attached, every
    #: backoff decision feeds retry counters, a backoff-delay histogram,
    #: and a correlation-id-tagged ``sim.retry`` event.
    obs: object = None

    def next_retry(self, simulation_id, operation, attempt):
        """Record failure number *attempt* and return the earliest
        virtual time the operation may be retried."""
        delay = self.policy.delay_for(attempt,
                                      key=f"{simulation_id}:{operation}")
        not_before = self.clock.now + delay
        self.events.append(RetryEvent(simulation_id, operation, attempt,
                                      self.clock.now, not_before))
        if self.obs is not None:
            from ..obs import correlation_id
            from ..obs.registry import BACKOFF_BUCKETS
            self.obs.metrics.counter(
                "grid_retries_total",
                help="Backoff decisions by operation class").labels(
                operation=operation).inc()
            self.obs.metrics.histogram(
                "grid_retry_backoff_seconds",
                help="Scheduled backoff delays (virtual seconds)",
                buckets=BACKOFF_BUCKETS).observe(delay)
            self.obs.events.emit(
                "sim.retry", simulation=simulation_id,
                trace_id=correlation_id(simulation_id),
                operation=operation, attempt=attempt,
                not_before=not_before)
        return not_before

    def exhausted(self, attempt):
        return self.policy.exhausted(attempt)

    def events_for(self, simulation_id):
        return [e for e in self.events
                if e.simulation_id == simulation_id]

    def attempts_for(self, simulation_id, operation):
        """Highest attempt number recorded for (simulation, operation)."""
        attempts = [e.attempt for e in self.events
                    if e.simulation_id == simulation_id
                    and e.operation == operation]
        return max(attempts, default=0)

    def rehydrate(self, simulations):
        """Rebuild escalation state from the durable ``Simulation`` rows.

        A fresh tracker in a bounced daemon knows nothing; without this,
        operator tooling (``events_for``/``attempts_for``) would report
        a clean slate for a simulation that is six failures deep into
        its budget.  For every persisted ``retry_counts`` entry one
        synthetic :class:`RetryEvent` is reconstructed carrying the
        surviving attempt count and the persisted backoff deadline
        (``failed_at`` is back-computed from the deterministic delay, so
        a rehydrated timeline matches the original one).  Budgets are
        *not* reset — that is the whole point.
        """
        restored = 0
        for simulation in simulations:
            counts = simulation.retry_counts or {}
            not_before = simulation.retry_not_before or 0.0
            for operation, attempt in sorted(counts.items()):
                attempt = int(attempt)
                if attempt <= self.attempts_for(simulation.pk, operation):
                    continue        # already known (shared tracker)
                delay = self.policy.delay_for(
                    attempt, key=f"{simulation.pk}:{operation}")
                self.events.append(RetryEvent(
                    simulation.pk, operation, attempt,
                    max(not_before - delay, 0.0), not_before))
                restored += 1
        return restored
