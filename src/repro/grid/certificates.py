"""Community credentials, proxy certificates, and GridShib SAML.

TeraGrid science gateways authenticate with a *community* credential and
are required to attach, per request, a SAML assertion naming the real
gateway user behind it (the GridShib model, Scavo & Welch 2008).  The
daemon therefore generates short-lived *derivative proxy certificates*
carrying the gateway-user attribute; resource-side services validate the
chain and log the attributed identity for end-to-end accounting.

Cryptography is simulated (HMAC chains over the declared fields), but the
lifecycle — issue, derive with lifetime, expire, verify chain, extract
SAML attributes — matches the operational behaviour the daemon exercises.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass, field


class CertificateInvalid(Exception):
    pass


@dataclass(frozen=True)
class CommunityCredential:
    """The gateway's long-lived credential (kept on the daemon host only).

    The private key never leaves this object; the portal host must never
    hold one — tests assert that separation.
    """

    distinguished_name: str
    _secret: str = field(repr=False, default_factory=lambda:
                         secrets.token_hex(16))

    def sign(self, payload: str) -> str:
        return hmac.new(self._secret.encode(), payload.encode(),
                        hashlib.sha256).hexdigest()


@dataclass(frozen=True)
class SAMLAssertion:
    """GridShib attribute assertion: the real user behind the community
    credential, plus provenance metadata."""

    gateway_name: str
    gateway_user: str
    user_email: str = ""

    def attributes(self):
        return {
            "urn:teragrid:gateway": self.gateway_name,
            "urn:teragrid:gateway-user": self.gateway_user,
            "urn:teragrid:user-email": self.user_email,
        }


@dataclass(frozen=True)
class ProxyCertificate:
    """A short-lived derivative proxy with embedded SAML extensions."""

    subject: str
    issuer_dn: str
    issued_at: float
    lifetime_s: float
    saml: SAMLAssertion
    signature: str

    @property
    def expires_at(self):
        return self.issued_at + self.lifetime_s

    def is_valid(self, now):
        return now < self.expires_at

    def payload(self):
        return "|".join([
            self.subject, self.issuer_dn, f"{self.issued_at:.3f}",
            f"{self.lifetime_s:.3f}", self.saml.gateway_user,
            self.saml.gateway_name])


class ProxyFactory:
    """Issues and verifies proxies for one community credential."""

    DEFAULT_LIFETIME_S = 12 * 3600.0

    def __init__(self, credential: CommunityCredential, clock):
        self.credential = credential
        self.clock = clock

    def issue(self, saml: SAMLAssertion, lifetime_s=None):
        lifetime_s = lifetime_s or self.DEFAULT_LIFETIME_S
        subject = (f"{self.credential.distinguished_name}"
                   f"/CN=proxy/{saml.gateway_user}")
        draft = ProxyCertificate(
            subject=subject,
            issuer_dn=self.credential.distinguished_name,
            issued_at=self.clock.now, lifetime_s=lifetime_s,
            saml=saml, signature="")
        signature = self.credential.sign(draft.payload())
        return ProxyCertificate(
            subject=subject,
            issuer_dn=self.credential.distinguished_name,
            issued_at=draft.issued_at, lifetime_s=lifetime_s,
            saml=saml, signature=signature)

    def verify(self, proxy: ProxyCertificate):
        """Validate signature chain and lifetime; raises on failure."""
        expected = self.credential.sign(proxy.payload())
        if not hmac.compare_digest(expected, proxy.signature):
            raise CertificateInvalid(
                f"Signature chain broken for {proxy.subject}")
        if proxy.issuer_dn != self.credential.distinguished_name:
            raise CertificateInvalid("Issuer mismatch")
        if not proxy.is_valid(self.clock.now):
            raise CertificateInvalid(
                f"Proxy for {proxy.saml.gateway_user} expired")
        return True
