"""Declarative HTML forms with validation.

The portal's simulation-submission and account-request pages are built on
these: a form declares typed fields, ``is_valid()`` runs field cleaning
plus ``clean_<field>()`` hooks plus a whole-form ``clean()``, and
``cleaned_data`` is the *only* thing views are allowed to write to the
database — the first stage of the paper's strict input-marshaling path.
"""

from .fields import (BooleanField, ChoiceField, EmailField, FloatField,
                     FormField, IntegerField, StringField)
from .forms import Form

__all__ = [
    "BooleanField", "ChoiceField", "EmailField", "FloatField", "Form",
    "FormField", "IntegerField", "StringField",
]
