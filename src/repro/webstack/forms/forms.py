"""Form base class with metaclass field collection."""

from __future__ import annotations

from ..templates.context import SafeString
from .fields import FormField, FormValidationError


class FormMeta(type):
    def __new__(mcs, name, bases, attrs):
        fields = {}
        for base in bases:
            fields.update(getattr(base, "base_fields", {}))
        declared = [(k, v) for k, v in attrs.items()
                    if isinstance(v, FormField)]
        declared.sort(key=lambda kv: kv[1]._order)
        for key, field in declared:
            field.bind(key)
            fields[key] = field
            attrs.pop(key)
        cls = super().__new__(mcs, name, bases, attrs)
        cls.base_fields = fields
        return cls


class Form(metaclass=FormMeta):
    """Declarative form.

    Usage mirrors Django::

        form = SubmitForm(request.POST)
        if form.is_valid():
            params = form.cleaned_data

    Per-field hooks named ``clean_<field>()`` run after the field's own
    cleaning; a whole-form ``clean()`` may enforce cross-field rules.
    """

    def __init__(self, data=None, initial=None):
        self.data = data
        self.initial = initial or {}
        self.is_bound = data is not None
        self.cleaned_data = {}
        self.errors = {}
        self._validated = False

    @property
    def fields(self):
        return self.base_fields

    # ------------------------------------------------------------------
    def is_valid(self):
        if not self.is_bound:
            return False
        if self._validated:
            return not self.errors
        self._validated = True
        for name, field in self.base_fields.items():
            raw = self.data.get(name)
            try:
                value = field.clean(raw)
                hook = getattr(self, f"clean_{name}", None)
                if hook is not None:
                    value = hook(value)
                self.cleaned_data[name] = value
            except FormValidationError as exc:
                self.errors.setdefault(name, []).append(exc.message)
        if not self.errors:
            try:
                self.cleaned_data = self.clean() or self.cleaned_data
            except FormValidationError as exc:
                self.errors.setdefault("__all__", []).append(exc.message)
        return not self.errors

    def clean(self):
        """Whole-form validation hook; return (possibly amended) data."""
        return self.cleaned_data

    def add_error(self, field, message):
        self.errors.setdefault(field, []).append(str(message))

    @property
    def non_field_errors(self):
        return self.errors.get("__all__", [])

    # ------------------------------------------------------------------
    def as_p(self):
        """Render all fields as ``<p>`` rows (Django's form.as_p)."""
        rows = []
        for name, field in self.base_fields.items():
            if self.is_bound:
                value = self.data.get(name, "")
            else:
                value = self.initial.get(name, field.initial)
            rows.append(field.render_row(value, self.errors.get(name, ())))
        return SafeString("\n".join(rows))

    def __repr__(self):  # pragma: no cover
        bound = "bound" if self.is_bound else "unbound"
        return f"<{type(self).__name__} {bound}>"
