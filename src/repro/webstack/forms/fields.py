"""Form fields: HTML widgets + coercion + validation."""

from __future__ import annotations

import re

from ..templates.context import escape


class FormValidationError(Exception):
    def __init__(self, message):
        self.message = str(message)
        super().__init__(self.message)


class FormField:
    """Base form field.

    Parameters
    ----------
    required:
        Reject empty submissions.
    label, help_text:
        Presentation strings.
    initial:
        Pre-filled value for unbound rendering.
    validators:
        Extra callables ``fn(value)`` raising :class:`FormValidationError`.
    """

    widget = "text"
    _creation_counter = 0

    def __init__(self, *, required=True, label=None, help_text="",
                 initial=None, validators=()):
        self.required = required
        self.label = label
        self.help_text = help_text
        self.initial = initial
        self.validators = list(validators)
        self.name = None
        self._order = FormField._creation_counter
        FormField._creation_counter += 1

    def bind(self, name):
        self.name = name
        if self.label is None:
            self.label = name.replace("_", " ").capitalize()

    def to_python(self, raw):
        return raw

    def clean(self, raw):
        if raw in (None, ""):
            if self.required:
                raise FormValidationError("This field is required.")
            return self.empty_value()
        value = self.to_python(raw)
        for validator in self.validators:
            validator(value)
        return value

    def empty_value(self):
        return None

    # -- rendering -------------------------------------------------------
    def render(self, value=None):
        value = "" if value is None else value
        return (f'<input type="{self.widget}" name="{self.name}" '
                f'id="id_{self.name}" value="{escape(value)}"'
                f'{" required" if self.required else ""}>')

    def render_row(self, value=None, errors=()):
        error_html = "".join(f'<span class="error">{escape(e)}</span>'
                             for e in errors)
        help_html = (f'<span class="help">{escape(self.help_text)}</span>'
                     if self.help_text else "")
        return (f'<p><label for="id_{self.name}">{escape(self.label)}'
                f"</label>{self.render(value)}{help_html}{error_html}</p>")


class StringField(FormField):
    def __init__(self, *, max_length=255, min_length=0, strip=True, **kw):
        super().__init__(**kw)
        self.max_length = max_length
        self.min_length = min_length
        self.strip = strip

    def to_python(self, raw):
        value = str(raw)
        if self.strip:
            value = value.strip()
        if self.max_length is not None and len(value) > self.max_length:
            raise FormValidationError(
                f"Ensure this value has at most {self.max_length} "
                f"characters (it has {len(value)}).")
        if len(value) < self.min_length:
            raise FormValidationError(
                f"Ensure this value has at least {self.min_length} "
                "characters.")
        return value

    def empty_value(self):
        return ""


class EmailField(StringField):
    widget = "email"
    _RE = re.compile(r"^[^@\s]+@[^@\s]+\.[^@\s]+$")

    def to_python(self, raw):
        value = super().to_python(raw)
        if not self._RE.match(value):
            raise FormValidationError("Enter a valid e-mail address.")
        return value


class IntegerField(FormField):
    widget = "number"

    def __init__(self, *, min_value=None, max_value=None, **kw):
        super().__init__(**kw)
        self.min_value = min_value
        self.max_value = max_value

    def to_python(self, raw):
        try:
            value = int(str(raw).strip())
        except (TypeError, ValueError):
            raise FormValidationError("Enter a whole number.")
        if self.min_value is not None and value < self.min_value:
            raise FormValidationError(
                f"Ensure this value is at least {self.min_value}.")
        if self.max_value is not None and value > self.max_value:
            raise FormValidationError(
                f"Ensure this value is at most {self.max_value}.")
        return value


class FloatField(FormField):
    """Floating-point input — the five ASTEC physical parameters use this.

    Bounds are *mandatory* here (unlike Django): a science-gateway float
    without a physical range is a marshaling bug waiting to happen.
    """

    widget = "number"

    def __init__(self, *, min_value, max_value, **kw):
        super().__init__(**kw)
        self.min_value = min_value
        self.max_value = max_value

    def to_python(self, raw):
        try:
            value = float(str(raw).strip())
        except (TypeError, ValueError):
            raise FormValidationError("Enter a number.")
        if value != value or value in (float("inf"), float("-inf")):
            raise FormValidationError("Enter a finite number.")
        if not (self.min_value <= value <= self.max_value):
            raise FormValidationError(
                f"Value must be between {self.min_value} and "
                f"{self.max_value}.")
        return value


class BooleanField(FormField):
    widget = "checkbox"

    def __init__(self, **kw):
        kw.setdefault("required", False)
        super().__init__(**kw)

    def clean(self, raw):
        return str(raw).lower() in ("on", "true", "1", "yes")

    def render(self, value=None):
        checked = " checked" if value else ""
        return (f'<input type="checkbox" name="{self.name}" '
                f'id="id_{self.name}"{checked}>')


class ChoiceField(FormField):
    def __init__(self, *, choices, **kw):
        super().__init__(**kw)
        self.choices = [(str(v), str(label)) for v, label in choices]

    def to_python(self, raw):
        value = str(raw)
        if value not in {v for v, _ in self.choices}:
            raise FormValidationError(
                f"Select a valid choice; {value!r} is not one of the "
                "available choices.")
        return value

    def render(self, value=None):
        options = []
        for v, label in self.choices:
            selected = " selected" if str(value) == v else ""
            options.append(f'<option value="{escape(v)}"{selected}>'
                           f"{escape(label)}</option>")
        return (f'<select name="{self.name}" id="id_{self.name}">'
                + "".join(options) + "</select>")
