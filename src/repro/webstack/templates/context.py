"""Template rendering context with scoped variable resolution."""

from __future__ import annotations


class VariableDoesNotExist(Exception):
    pass


class SafeString(str):
    """A string exempt from autoescaping (already-safe HTML)."""

    def __html_safe__(self):
        return True


def mark_safe(value):
    return SafeString(value)


def escape(value):
    """HTML-escape a value unless it is already marked safe."""
    if isinstance(value, SafeString):
        return value
    text = str(value)
    return SafeString(text.replace("&", "&amp;").replace("<", "&lt;")
                      .replace(">", "&gt;").replace('"', "&quot;")
                      .replace("'", "&#x27;"))


class Context:
    """A stack of variable scopes.

    ``push()``/``pop()`` bracket block scopes ({% for %} bodies, includes),
    so loop variables never leak.  Resolution of a dotted path tries, in
    order: dict key, attribute, list index — and calls zero-argument
    callables, matching Django's lookup order that the portal templates
    rely on (``star.simulations.count``).
    """

    def __init__(self, data=None, autoescape=True):
        self.stack = [dict(data or {})]
        self.autoescape = autoescape
        # Render-time state owned by {% block %} inheritance.
        self.block_overrides = {}

    def push(self, data=None):
        self.stack.append(dict(data or {}))

    def pop(self):
        if len(self.stack) == 1:
            raise RuntimeError("Cannot pop the root context scope")
        self.stack.pop()

    def __setitem__(self, key, value):
        self.stack[-1][key] = value

    def __getitem__(self, key):
        for scope in reversed(self.stack):
            if key in scope:
                return scope[key]
        raise KeyError(key)

    def __contains__(self, key):
        return any(key in scope for scope in self.stack)

    def get(self, key, default=None):
        try:
            return self[key]
        except KeyError:
            return default

    def flatten(self):
        merged = {}
        for scope in self.stack:
            merged.update(scope)
        return merged

    # ------------------------------------------------------------------
    def resolve(self, path):
        """Resolve a dotted variable path; raises VariableDoesNotExist."""
        parts = path.split(".")
        try:
            current = self[parts[0]]
        except KeyError:
            raise VariableDoesNotExist(parts[0])
        for part in parts[1:]:
            current = _lookup(current, part)
        if callable(current) and not getattr(current, "do_not_call", False):
            current = current()
        return current


def _lookup(obj, key):
    if isinstance(obj, dict):
        if key in obj:
            return obj[key]
    try:
        value = getattr(obj, key)
        if callable(value) and not getattr(value, "do_not_call", False):
            return value()
        return value
    except AttributeError:
        pass
    try:
        return obj[int(key)]
    except (TypeError, ValueError, IndexError, KeyError):
        pass
    raise VariableDoesNotExist(f"Cannot resolve {key!r} on {type(obj).__name__}")
