"""Built-in template filters.

The set implemented is the set the AMP portal templates use: formatting of
star parameters (``floatformat``), presentation helpers, defensive
defaults, and escaping control.
"""

from __future__ import annotations

import datetime as _dt
from urllib.parse import quote

from .context import SafeString, escape, mark_safe

FILTERS = {}


def register(name):
    def decorator(fn):
        FILTERS[name] = fn
        return fn
    return decorator


def get_filter(name):
    try:
        return FILTERS[name]
    except KeyError:
        raise ValueError(f"Unknown template filter {name!r}")


@register("upper")
def _upper(value):
    return str(value).upper()


@register("lower")
def _lower(value):
    return str(value).lower()


@register("title")
def _title(value):
    return str(value).title()


@register("capfirst")
def _capfirst(value):
    text = str(value)
    return text[:1].upper() + text[1:]


@register("length")
def _length(value):
    try:
        return len(value)
    except TypeError:
        return 0


@register("default")
def _default(value, fallback=""):
    if value in (None, "", [], {}):
        return fallback
    return value


@register("join")
def _join(value, sep=", "):
    return str(sep).join(str(v) for v in value)


@register("floatformat")
def _floatformat(value, places=1):
    """Format a float to *places* decimals (Django's floatformat)."""
    try:
        number = float(value)
        places = int(places)
    except (TypeError, ValueError):
        return value
    return f"{number:.{places}f}"


@register("intcomma")
def _intcomma(value):
    try:
        return f"{int(round(float(value))):,}"
    except (TypeError, ValueError):
        return value


@register("date")
def _date(value, fmt="%Y-%m-%d %H:%M"):
    if isinstance(value, str):
        try:
            value = _dt.datetime.fromisoformat(value)
        except ValueError:
            return value
    if isinstance(value, (_dt.datetime, _dt.date)):
        return value.strftime(str(fmt))
    return value


@register("truncatechars")
def _truncatechars(value, limit=80):
    text = str(value)
    limit = int(limit)
    if len(text) <= limit:
        return text
    return text[: max(limit - 1, 0)] + "…"


@register("yesno")
def _yesno(value, arg="yes,no"):
    choices = str(arg).split(",")
    if len(choices) == 2:
        choices.append(choices[1])
    if value is None:
        return choices[2]
    return choices[0] if value else choices[1]


@register("pluralize")
def _pluralize(value, suffix="s"):
    try:
        count = len(value)
    except TypeError:
        try:
            count = int(value)
        except (TypeError, ValueError):
            return ""
    return "" if count == 1 else str(suffix)


@register("urlencode")
def _urlencode(value):
    return quote(str(value), safe="")


@register("safe")
def _safe(value):
    return mark_safe(str(value))


@register("escape")
def _escape(value):
    return escape(value)


@register("linebreaksbr")
def _linebreaksbr(value):
    escaped = escape(value)
    return SafeString(escaped.replace("\n", "<br>"))


@register("first")
def _first(value):
    try:
        return value[0]
    except (IndexError, KeyError, TypeError):
        return ""


@register("last")
def _last(value):
    try:
        return value[-1]
    except (IndexError, KeyError, TypeError):
        return ""


@register("slice")
def _slice(value, spec="0:0"):
    start, _, stop = str(spec).partition(":")
    try:
        return value[int(start or 0):int(stop) if stop else None]
    except (TypeError, ValueError):
        return value
