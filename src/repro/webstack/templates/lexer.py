"""Template lexer: splits source into TEXT / VAR / TAG / COMMENT tokens."""

from __future__ import annotations

import re
from dataclasses import dataclass

TOKEN_TEXT = "text"
TOKEN_VAR = "var"       # {{ expression }}
TOKEN_TAG = "tag"       # {% tag ... %}
TOKEN_COMMENT = "comment"  # {# ... #}

_TAG_RE = re.compile(r"({{.*?}}|{%.*?%}|{#.*?#})", re.DOTALL)


@dataclass
class Token:
    kind: str
    contents: str
    lineno: int


class TemplateSyntaxError(Exception):
    """Malformed template source."""


def tokenize(source):
    """Split *source* into a token list, tracking line numbers."""
    tokens = []
    lineno = 1
    for chunk in _TAG_RE.split(source):
        if not chunk:
            continue
        if chunk.startswith("{{") and chunk.endswith("}}"):
            tokens.append(Token(TOKEN_VAR, chunk[2:-2].strip(), lineno))
        elif chunk.startswith("{%") and chunk.endswith("%}"):
            tokens.append(Token(TOKEN_TAG, chunk[2:-2].strip(), lineno))
        elif chunk.startswith("{#") and chunk.endswith("#}"):
            tokens.append(Token(TOKEN_COMMENT, chunk[2:-2].strip(), lineno))
        else:
            if "{{" in chunk or "{%" in chunk:
                raise TemplateSyntaxError(
                    f"Unclosed template construct near line {lineno}")
            tokens.append(Token(TOKEN_TEXT, chunk, lineno))
        lineno += chunk.count("\n")
    return tokens
