"""Template parser and engine.

Templates are registered with the engine as named strings (the portal
ships its templates as Python-embedded strings so the whole site is one
importable code base) or loaded from directories.  Parsed templates are
cached per engine.
"""

from __future__ import annotations

import os
import re

from .context import Context
from .lexer import (TOKEN_COMMENT, TOKEN_TAG, TOKEN_TEXT, TOKEN_VAR,
                    TemplateSyntaxError, tokenize)
from .nodes import (AutoescapeNode, BlockNode, BoolExpression, ExtendsNode,
                    FilterExpression, ForNode, IfNode, IncludeNode, NodeList,
                    TextNode, UrlNode, VarNode, parse_atom)

_KWARG_RE = re.compile(r"(\w+)=((?:'[^']*')|(?:\"[^\"]*\")|\S+)")


class Parser:
    def __init__(self, tokens, engine):
        self.tokens = tokens
        self.engine = engine
        self.pos = 0
        self.blocks = {}

    def parse(self, until=()):
        """Parse until one of the *until* tag names; returns a NodeList.

        The terminating token is left available via ``self.next_tag``.
        """
        nodelist = NodeList()
        self.next_tag = None
        while self.pos < len(self.tokens):
            token = self.tokens[self.pos]
            self.pos += 1
            if token.kind == TOKEN_TEXT:
                nodelist.append(TextNode(token.contents))
            elif token.kind == TOKEN_COMMENT:
                continue
            elif token.kind == TOKEN_VAR:
                nodelist.append(VarNode(token.contents))
            elif token.kind == TOKEN_TAG:
                name, _, rest = token.contents.partition(" ")
                rest = rest.strip()
                if name in until:
                    self.next_tag = (name, rest)
                    return nodelist
                nodelist.append(self._parse_tag(name, rest, token))
        if until:
            raise TemplateSyntaxError(
                f"Unclosed block: expected one of {until}")
        return nodelist

    # ------------------------------------------------------------------
    def _parse_tag(self, name, rest, token):
        method = getattr(self, f"_tag_{name}", None)
        if method is None:
            raise TemplateSyntaxError(
                f"Unknown tag {{% {name} %}} at line {token.lineno}")
        return method(rest)

    def _tag_if(self, rest):
        branches = []
        condition = BoolExpression(rest)
        while True:
            body = self.parse(until=("elif", "else", "endif"))
            branches.append((condition, body))
            tag, tag_rest = self.next_tag
            if tag == "elif":
                condition = BoolExpression(tag_rest)
                continue
            if tag == "else":
                body = self.parse(until=("endif",))
                branches.append((None, body))
            return IfNode(branches)

    def _tag_for(self, rest):
        match = re.match(r"^(.+?)\s+in\s+(.+)$", rest)
        if not match:
            raise TemplateSyntaxError(f"Malformed for tag: {rest!r}")
        loopvars = [v.strip() for v in match.group(1).split(",")]
        iterable = FilterExpression(match.group(2).strip())
        body = self.parse(until=("empty", "endfor"))
        empty = None
        if self.next_tag[0] == "empty":
            empty = self.parse(until=("endfor",))
        return ForNode(loopvars, iterable, body, empty)

    def _tag_block(self, rest):
        name = rest.strip()
        if not name:
            raise TemplateSyntaxError("{% block %} requires a name")
        body = self.parse(until=("endblock",))
        node = BlockNode(name, body)
        if name in self.blocks:
            raise TemplateSyntaxError(f"Duplicate block {name!r}")
        self.blocks[name] = node
        return node

    def _tag_extends(self, rest):
        parent = parse_atom(rest)
        # Everything after extends is parsed normally so blocks register.
        remainder = self.parse(until=())
        del remainder  # only the collected blocks matter
        return ExtendsNode(parent, self.blocks, self.engine)

    def _tag_include(self, rest):
        head, _, with_part = rest.partition(" with ")
        template_expr = parse_atom(head.strip())
        with_map = {}
        for key, raw in _KWARG_RE.findall(with_part):
            with_map[key] = FilterExpression(raw)
        return IncludeNode(template_expr, with_map, self.engine)

    def _tag_comment(self, rest):
        self.parse(until=("endcomment",))
        return TextNode("")

    def _tag_autoescape(self, rest):
        setting = rest.strip()
        if setting not in ("on", "off"):
            raise TemplateSyntaxError("autoescape argument must be on|off")
        body = self.parse(until=("endautoescape",))
        return AutoescapeNode(setting == "on", body)

    def _tag_with(self, rest):
        from .nodes import Node

        class WithNode(Node):
            def __init__(self, assignments, body):
                self.assignments = assignments
                self.body = body

            def render(self, context):
                scope = {key: expr.resolve(context)
                         for key, expr in self.assignments.items()}
                context.push(scope)
                try:
                    return self.body.render(context)
                finally:
                    context.pop()

        assignments = {}
        for key, raw in _KWARG_RE.findall(rest):
            assignments[key] = FilterExpression(raw)
        if not assignments:
            raise TemplateSyntaxError(
                "{% with %} requires key=value assignments")
        body = self.parse(until=("endwith",))
        return WithNode(assignments, body)

    def _tag_url(self, rest):
        parts = rest.split()
        if not parts:
            raise TemplateSyntaxError("{% url %} requires a route name")
        name_expr = parse_atom(parts[0])
        kwargs = {}
        for key, raw in _KWARG_RE.findall(" ".join(parts[1:])):
            kwargs[key] = FilterExpression(raw)
        return UrlNode(name_expr, kwargs, self.engine)


class Template:
    """A compiled template."""

    def __init__(self, source, engine=None, name="<string>"):
        self.name = name
        self.engine = engine or Engine()
        parser = Parser(tokenize(source), self.engine)
        self.nodelist = parser.parse()
        self.blocks = parser.blocks

    def render(self, data=None, context=None):
        context = context or Context(data or {})
        return self.nodelist.render(context)


class Engine:
    """Template registry + cache.

    Parameters
    ----------
    templates:
        Mapping of template name to source string.
    directories:
        Optional list of directories searched for ``name`` files.
    url_resolver:
        A :class:`~repro.webstack.urls.URLResolver` enabling {% url %}.
    """

    def __init__(self, templates=None, directories=(), url_resolver=None):
        self.sources = dict(templates or {})
        self.directories = list(directories)
        self.url_resolver = url_resolver
        self._cache = {}

    def register(self, name, source):
        self.sources[name] = source
        self._cache.pop(name, None)

    def register_many(self, mapping):
        for name, source in mapping.items():
            self.register(name, source)

    def get_template(self, name):
        if name in self._cache:
            return self._cache[name]
        source = self.sources.get(name)
        if source is None:
            for directory in self.directories:
                candidate = os.path.join(directory, name)
                if os.path.exists(candidate):
                    with open(candidate, encoding="utf-8") as fh:
                        source = fh.read()
                    break
        if source is None:
            raise TemplateSyntaxError(f"Template {name!r} not found")
        template = Template(source, engine=self, name=name)
        self._cache[name] = template
        return template

    def render_to_string(self, name, data=None):
        return self.get_template(name).render(data or {})
