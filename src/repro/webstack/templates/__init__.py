"""A from-scratch Django-style template engine.

Implements the template-language subset the AMP portal uses: variable
interpolation with filters, ``{% if %}``/``{% for %}`` control flow,
``{% block %}``/``{% extends %}`` inheritance, ``{% include %}``,
``{% url %}`` reversing, comments, and autoescaping with ``|safe`` marks.
"""

from .context import Context, SafeString, VariableDoesNotExist, escape, mark_safe
from .engine import Engine, Template
from .filters import FILTERS, get_filter, register
from .lexer import TemplateSyntaxError, tokenize

__all__ = [
    "Context", "Engine", "FILTERS", "SafeString", "Template",
    "TemplateSyntaxError", "VariableDoesNotExist", "escape", "get_filter",
    "mark_safe", "register", "tokenize",
]
