"""Template parse-tree nodes and expression evaluation."""

from __future__ import annotations

import re

from .context import SafeString, VariableDoesNotExist, escape
from .filters import get_filter
from .lexer import TemplateSyntaxError

_NUMBER_RE = re.compile(r"^-?\d+(\.\d+)?$")


class Literal:
    def __init__(self, value):
        self.value = value

    def resolve(self, context):
        return self.value


class VariablePath:
    def __init__(self, path):
        self.path = path

    def resolve(self, context):
        return context.resolve(self.path)


def parse_atom(text):
    """Parse one expression atom: quoted string, number, or variable path."""
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return Literal(text[1:-1])
    if _NUMBER_RE.match(text):
        return Literal(float(text) if "." in text else int(text))
    if text == "True":
        return Literal(True)
    if text == "False":
        return Literal(False)
    if text == "None":
        return Literal(None)
    return VariablePath(text)


class FilterExpression:
    """``variable.path|filter:arg|filter`` — the {{ }} expression syntax."""

    _FILTER_RE = re.compile(
        r"\|(\w+)(?::((?:'[^']*')|(?:\"[^\"]*\")|[^|]+))?")

    def __init__(self, expression):
        head = self._FILTER_RE.split(expression)[0].strip()
        self.atom = parse_atom(head)
        self.filters = []
        for match in self._FILTER_RE.finditer(expression):
            name = match.group(1)
            arg_text = match.group(2)
            arg = parse_atom(arg_text) if arg_text is not None else None
            self.filters.append((get_filter(name), arg, name))

    def resolve(self, context, fail_silently=True):
        try:
            value = self.atom.resolve(context)
        except VariableDoesNotExist:
            if not fail_silently:
                raise
            value = ""
        for fn, arg, _name in self.filters:
            if arg is None:
                value = fn(value)
            else:
                value = fn(value, arg.resolve(context))
        return value


# ----------------------------------------------------------------------
# Boolean expressions for {% if %}
# ----------------------------------------------------------------------

_COMPARISONS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "in": lambda a, b: a in b,
}


class BoolExpression:
    """Recursive-descent parser/evaluator for {% if %} conditions.

    Grammar (lowest to highest precedence)::

        expr   := andexp ("or" andexp)*
        andexp := notexp ("and" notexp)*
        notexp := "not" notexp | comp
        comp   := atom (OP atom)?
    """

    def __init__(self, expression):
        self.tokens = expression.split()
        if not self.tokens:
            raise TemplateSyntaxError("Empty {% if %} condition")
        self.pos = 0
        self.tree = self._parse_or()
        if self.pos != len(self.tokens):
            raise TemplateSyntaxError(
                f"Trailing tokens in condition: {self.tokens[self.pos:]}")

    # -- parsing -------------------------------------------------------
    def _peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self):
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def _parse_or(self):
        node = self._parse_and()
        while self._peek() == "or":
            self._next()
            node = ("or", node, self._parse_and())
        return node

    def _parse_and(self):
        node = self._parse_not()
        while self._peek() == "and":
            self._next()
            node = ("and", node, self._parse_not())
        return node

    def _parse_not(self):
        if self._peek() == "not":
            self._next()
            # "not in" as a unit: peek back is handled in _parse_comp.
            return ("not", self._parse_not())
        return self._parse_comp()

    def _parse_comp(self):
        left = parse_atom(self._next())
        op = self._peek()
        if op == "not" and self.pos + 1 < len(self.tokens) \
                and self.tokens[self.pos + 1] == "in":
            self._next()
            self._next()
            right = parse_atom(self._next())
            return ("cmp", lambda a, b: a not in b, left, right)
        if op in _COMPARISONS:
            self._next()
            right = parse_atom(self._next())
            return ("cmp", _COMPARISONS[op], left, right)
        return ("atom", left)

    # -- evaluation ------------------------------------------------------
    def evaluate(self, context):
        return self._eval(self.tree, context)

    def _eval(self, node, context):
        kind = node[0]
        if kind == "or":
            return (self._eval(node[1], context)
                    or self._eval(node[2], context))
        if kind == "and":
            return (self._eval(node[1], context)
                    and self._eval(node[2], context))
        if kind == "not":
            return not self._eval(node[1], context)
        if kind == "cmp":
            _, fn, left, right = node
            try:
                return bool(fn(self._atom(left, context),
                               self._atom(right, context)))
            except TypeError:
                return False
        if kind == "atom":
            return bool(self._atom(node[1], context))
        raise AssertionError(kind)  # pragma: no cover

    @staticmethod
    def _atom(atom, context):
        try:
            return atom.resolve(context)
        except VariableDoesNotExist:
            return None


# ----------------------------------------------------------------------
# Nodes
# ----------------------------------------------------------------------

class Node:
    def render(self, context):  # pragma: no cover - interface
        raise NotImplementedError


class NodeList(list):
    def render(self, context):
        return "".join(node.render(context) for node in self)


class TextNode(Node):
    def __init__(self, text):
        self.text = text

    def render(self, context):
        return self.text


class VarNode(Node):
    def __init__(self, expression):
        self.expr = FilterExpression(expression)

    def render(self, context):
        value = self.expr.resolve(context)
        if value is None:
            value = ""
        if context.autoescape and not isinstance(value, SafeString):
            return str(escape(value))
        return str(value)


class IfNode(Node):
    """{% if %} / {% elif %} / {% else %} chains."""

    def __init__(self, branches):
        self.branches = branches  # list of (BoolExpression|None, NodeList)

    def render(self, context):
        for condition, body in self.branches:
            if condition is None or condition.evaluate(context):
                return body.render(context)
        return ""


class ForNode(Node):
    """{% for x in items %} ... {% empty %} ... {% endfor %}.

    Exposes ``forloop.counter`` / ``counter0`` / ``first`` / ``last`` /
    ``revcounter`` exactly like Django.  Multiple loop variables unpack
    tuples (``{% for key, value in pairs %}``).
    """

    def __init__(self, loopvars, iterable, body, empty):
        self.loopvars = loopvars
        self.iterable = iterable
        self.body = body
        self.empty = empty

    def render(self, context):
        try:
            items = self.iterable.resolve(context)
        except VariableDoesNotExist:
            items = None
        items = list(items) if items else []
        if not items:
            return self.empty.render(context) if self.empty else ""
        out = []
        total = len(items)
        for index, item in enumerate(items):
            scope = {"forloop": {
                "counter": index + 1, "counter0": index,
                "revcounter": total - index, "first": index == 0,
                "last": index == total - 1,
            }}
            if len(self.loopvars) == 1:
                scope[self.loopvars[0]] = item
            else:
                unpacked = list(item)
                if len(unpacked) != len(self.loopvars):
                    raise TemplateSyntaxError(
                        f"Cannot unpack {len(unpacked)} values into "
                        f"{len(self.loopvars)} loop variables")
                scope.update(zip(self.loopvars, unpacked))
            context.push(scope)
            try:
                out.append(self.body.render(context))
            finally:
                context.pop()
        return "".join(out)


class BlockNode(Node):
    """{% block name %} — an override point for template inheritance."""

    def __init__(self, name, body):
        self.name = name
        self.body = body

    def render(self, context):
        override = context.block_overrides.get(self.name)
        if override is not None and override is not self:
            # block.super support: expose parent body via a scope entry.
            context.push({"block": {"super": SafeString(
                self.body.render(context))}})
            try:
                return override.body.render(context)
            finally:
                context.pop()
        return self.body.render(context)


class ExtendsNode(Node):
    """{% extends "parent.html" %} — must be the template's first tag."""

    def __init__(self, parent_expr, child_blocks, engine):
        self.parent_expr = parent_expr
        self.child_blocks = child_blocks
        self.engine = engine

    def render(self, context):
        parent_name = self.parent_expr.resolve(context)
        parent = self.engine.get_template(parent_name)
        # Child overrides win over any the parent (itself a child) set.
        for name, block in self.child_blocks.items():
            context.block_overrides.setdefault(name, block)
        return parent.nodelist.render(context)


class IncludeNode(Node):
    """{% include "name.html" %} with optional ``with key=expr`` pairs."""

    def __init__(self, template_expr, with_map, engine):
        self.template_expr = template_expr
        self.with_map = with_map
        self.engine = engine

    def render(self, context):
        name = self.template_expr.resolve(context)
        template = self.engine.get_template(name)
        scope = {key: expr.resolve(context)
                 for key, expr in self.with_map.items()}
        context.push(scope)
        try:
            return template.nodelist.render(context)
        finally:
            context.pop()


class AutoescapeNode(Node):
    def __init__(self, setting, body):
        self.setting = setting
        self.body = body

    def render(self, context):
        previous = context.autoescape
        context.autoescape = self.setting
        try:
            return self.body.render(context)
        finally:
            context.autoescape = previous


class UrlNode(Node):
    """{% url 'route-name' key=value ... %} — reverse through the engine."""

    def __init__(self, name_expr, kwargs, engine):
        self.name_expr = name_expr
        self.kwargs = kwargs
        self.engine = engine

    def render(self, context):
        if self.engine.url_resolver is None:
            raise TemplateSyntaxError(
                "{% url %} used but the engine has no URL resolver")
        kwargs = {k: v.resolve(context) for k, v in self.kwargs.items()}
        name = self.name_expr.resolve(context)
        return self.engine.url_resolver.reverse(name, **kwargs)
