"""HTTP response types."""

from __future__ import annotations

import json

REASON_PHRASES = {
    200: "OK", 201: "Created", 204: "No Content",
    301: "Moved Permanently", 302: "Found", 304: "Not Modified",
    400: "Bad Request", 401: "Unauthorized", 403: "Forbidden",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    410: "Gone", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


class Http404(Exception):
    """Raised by views; converted to a 404 response by the handler."""


class HttpResponse:
    """A basic HTTP response with headers and cookie support."""

    status_code = 200

    def __init__(self, content=b"", content_type="text/html; charset=utf-8",
                 status=None):
        if isinstance(content, str):
            content = content.encode("utf-8")
        self.content = content
        if status is not None:
            self.status_code = status
        self.headers = {"Content-Type": content_type}
        self._cookies = {}

    # ------------------------------------------------------------------
    def __setitem__(self, header, value):
        self.headers[header] = value

    def __getitem__(self, header):
        return self.headers[header]

    def get(self, header, default=None):
        return self.headers.get(header, default)

    def set_cookie(self, key, value, *, max_age=None, path="/",
                   httponly=True, secure=False):
        morsel = f"{key}={value}; Path={path}"
        if max_age is not None:
            morsel += f"; Max-Age={int(max_age)}"
        if httponly:
            morsel += "; HttpOnly"
        if secure:
            morsel += "; Secure"
        self._cookies[key] = morsel

    def delete_cookie(self, key, path="/"):
        self._cookies[key] = f"{key}=; Path={path}; Max-Age=0"

    @property
    def cookies(self):
        return dict(self._cookies)

    # ------------------------------------------------------------------
    @property
    def reason_phrase(self):
        return REASON_PHRASES.get(self.status_code, "Unknown")

    @property
    def text(self):
        return self.content.decode("utf-8")

    def wsgi_headers(self):
        headers = list(self.headers.items())
        headers.extend(("Set-Cookie", morsel)
                       for morsel in self._cookies.values())
        return headers

    def __repr__(self):  # pragma: no cover
        return f"<HttpResponse {self.status_code}>"


class HttpResponseRedirect(HttpResponse):
    status_code = 302

    def __init__(self, location):
        super().__init__(b"")
        self.headers["Location"] = location

    @property
    def url(self):
        return self.headers["Location"]


class HttpResponseNotFound(HttpResponse):
    status_code = 404


class HttpResponseBadRequest(HttpResponse):
    status_code = 400


class HttpResponseForbidden(HttpResponse):
    status_code = 403


class HttpResponseServerError(HttpResponse):
    status_code = 500


class HttpResponseNotAllowed(HttpResponse):
    status_code = 405

    def __init__(self, permitted_methods):
        super().__init__(b"")
        self.headers["Allow"] = ", ".join(permitted_methods)


class JsonResponse(HttpResponse):
    """JSON payload response (the portal's AJAX suggestion endpoints)."""

    def __init__(self, data, status=None):
        super().__init__(json.dumps(data),
                         content_type="application/json", status=status)
        self.data = data
