"""HTTP request parsing.

Requests arrive as WSGI environ dictionaries (from the dev server or the
in-process test client) and are normalised into :class:`HttpRequest`
objects with Django-compatible attribute names (``GET``, ``POST``,
``COOKIES``, ``META``, ``user``, ``session``) because the portal view code
is written against that interface.
"""

from __future__ import annotations

import io
import json
from urllib.parse import parse_qsl


class QueryDict(dict):
    """A dict whose values may be multi-valued (repeated form keys).

    ``qd[key]`` returns the *last* value (Django semantics);
    ``qd.getlist(key)`` returns all of them.
    """

    def __init__(self, pairs=()):
        super().__init__()
        self._lists = {}
        for key, value in pairs:
            self.appendlist(key, value)

    def appendlist(self, key, value):
        self._lists.setdefault(key, []).append(value)
        super().__setitem__(key, value)

    def __setitem__(self, key, value):
        self._lists[key] = [value]
        super().__setitem__(key, value)

    def getlist(self, key, default=None):
        return self._lists.get(key, default if default is not None else [])

    def copy(self):
        qd = QueryDict()
        for key, values in self._lists.items():
            for v in values:
                qd.appendlist(key, v)
        return qd

    @classmethod
    def from_query_string(cls, qs):
        return cls(parse_qsl(qs or "", keep_blank_values=True))


def parse_cookies(header):
    """Parse a ``Cookie:`` header value into a plain dict."""
    cookies = {}
    for chunk in (header or "").split(";"):
        if "=" in chunk:
            key, _, value = chunk.strip().partition("=")
            cookies[key] = value
    return cookies


class HttpRequest:
    """A parsed HTTP request.

    Attributes
    ----------
    method, path:
        Verb and URL path.
    GET, POST:
        :class:`QueryDict` of query string / form body parameters.
    COOKIES:
        Plain dict of cookies.
    META:
        The raw WSGI environ.
    user, session:
        Populated by the auth middleware; ``user`` defaults to an
        anonymous user until then.
    is_secure:
        True when the request arrived over SSL — the portal requires this
        for all authenticated activity (paper §4.2).
    """

    def __init__(self, environ):
        self.META = environ
        self.method = environ.get("REQUEST_METHOD", "GET").upper()
        self.path = environ.get("PATH_INFO", "/") or "/"
        self.GET = QueryDict.from_query_string(environ.get("QUERY_STRING", ""))
        self.COOKIES = parse_cookies(environ.get("HTTP_COOKIE", ""))
        self.content_type = environ.get("CONTENT_TYPE", "")
        self._body = None
        self._post = None
        self.user = None
        self.session = None
        self.resolver_kwargs = {}

    @property
    def is_secure(self):
        return (self.META.get("wsgi.url_scheme") == "https"
                or self.META.get("HTTPS") == "on")

    @property
    def body(self):
        if self._body is None:
            try:
                length = int(self.META.get("CONTENT_LENGTH") or 0)
            except ValueError:
                length = 0
            stream = self.META.get("wsgi.input") or io.BytesIO()
            self._body = stream.read(length) if length else b""
        return self._body

    @property
    def POST(self):
        if self._post is None:
            if (self.method in ("POST", "PUT")
                    and self.content_type.startswith(
                        "application/x-www-form-urlencoded")):
                self._post = QueryDict(
                    parse_qsl(self.body.decode("utf-8"),
                              keep_blank_values=True))
            else:
                self._post = QueryDict()
        return self._post

    def json(self):
        """Decode a JSON request body (AJAX endpoints)."""
        return json.loads(self.body.decode("utf-8"))

    def get_host(self):
        return self.META.get("HTTP_HOST", "testserver")

    def build_absolute_uri(self, path=None):
        scheme = "https" if self.is_secure else "http"
        return f"{scheme}://{self.get_host()}{path or self.path}"

    def __repr__(self):  # pragma: no cover
        return f"<HttpRequest {self.method} {self.path}>"
