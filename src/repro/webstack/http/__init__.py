"""HTTP request/response primitives for the webstack framework."""

from .request import HttpRequest, QueryDict, parse_cookies
from .response import (Http404, HttpResponse, HttpResponseBadRequest,
                       HttpResponseForbidden, HttpResponseNotAllowed,
                       HttpResponseNotFound, HttpResponseRedirect,
                       HttpResponseServerError, JsonResponse)

__all__ = [
    "Http404", "HttpRequest", "HttpResponse", "HttpResponseBadRequest",
    "HttpResponseForbidden", "HttpResponseNotAllowed",
    "HttpResponseNotFound", "HttpResponseRedirect",
    "HttpResponseServerError", "JsonResponse", "QueryDict", "parse_cookies",
]
