"""Auto-generated administrative interface over registered models.

The paper highlights that Django's admin let gateway operators approve
users and adjust back-end parameters ("allocations and the authorization
for a user to submit to a machine using a particular allocation") from a
graphical interface "without custom development", and that the admin is
only reachable from the developers' environment, never the public web
servers.  :class:`AdminSite` reproduces that: register a model, get
list/change/delete views; mount the site's routes only in the non-public
deployment, backed by the full-privilege ``admin`` database role.
"""

from .site import AdminSite, ModelAdmin

__all__ = ["AdminSite", "ModelAdmin"]
