"""AdminSite: registration, generated CRUD views, and URL routes."""

from __future__ import annotations

from ..auth import staff_required
from ..http import (Http404, HttpResponse, HttpResponseBadRequest,
                    HttpResponseRedirect)
from ..orm.exceptions import IntegrityError, ValidationError
from ..orm.fields import AutoField, BooleanField, DateTimeField, ForeignKey
from ..templates.context import escape

_PAGE = """<html><head><title>{title} | webstack admin</title></head>
<body><h1>{title}</h1><p><a href="{root}">admin index</a></p>{body}
</body></html>"""


class ModelAdmin:
    """Per-model admin configuration.

    Attributes
    ----------
    list_display:
        Field names shown as columns on the changelist (defaults to all
        concrete fields).
    list_filter:
        Field names offered as exact-match query-string filters.
    ordering:
        Changelist ordering (defaults to the model Meta ordering).
    """

    list_display = None
    list_filter = ()
    ordering = None

    def __init__(self, model, db):
        self.model = model
        self.db = db

    # ------------------------------------------------------------------
    def queryset(self):
        qs = self.model.objects.using(self.db)
        order = self.ordering or self.model._meta.ordering
        if order:
            qs = qs.order_by(*order)
        return qs

    def display_fields(self):
        names = self.list_display or [f.attname
                                      for f in self.model._meta.fields]
        return names

    def editable_fields(self):
        return [f for f in self.model._meta.fields
                if f.editable and not isinstance(f, AutoField)]


class AdminSite:
    """The registry + view factory for the admin interface."""

    def __init__(self, db, *, title="Gateway administration"):
        self.db = db
        self.title = title
        self._registry = {}

    def register(self, model, admin_class=ModelAdmin):
        key = model._meta.table_name
        self._registry[key] = admin_class(model, self.db)
        return self._registry[key]

    def get(self, table_name):
        try:
            return self._registry[table_name]
        except KeyError:
            raise Http404(f"Model {table_name!r} is not registered")

    # ------------------------------------------------------------------
    # Views (wrapped by routes())
    # ------------------------------------------------------------------
    def index_view(self, request):
        items = "".join(
            f'<li><a href="/admin/{key}/">'
            f"{escape(admin.model.__name__)}</a> "
            f"({admin.queryset().count()} rows)</li>"
            for key, admin in sorted(self._registry.items()))
        return HttpResponse(_PAGE.format(
            title=self.title, root="/admin/", body=f"<ul>{items}</ul>"))

    def changelist_view(self, request, table):
        admin = self.get(table)
        qs = admin.queryset()
        for field_name in admin.list_filter:
            if field_name in request.GET:
                qs = qs.filter(**{field_name: request.GET[field_name]})
        names = admin.display_fields()
        head = "".join(f"<th>{escape(n)}</th>" for n in names)
        rows = []
        for obj in qs[:200]:
            cells = "".join(
                f"<td>{escape(getattr(obj, n, ''))}</td>" for n in names)
            rows.append(
                f'<tr><td><a href="/admin/{table}/{obj.pk}/">#{obj.pk}'
                f"</a></td>{cells}</tr>")
        body = (f'<table><tr><th>pk</th>{head}</tr>{"".join(rows)}</table>'
                f'<p><a href="/admin/{table}/add/">Add</a></p>')
        return HttpResponse(_PAGE.format(
            title=admin.model.__name__, root="/admin/", body=body))

    def change_view(self, request, table, pk):
        admin = self.get(table)
        try:
            obj = admin.queryset().get(pk=pk)
        except admin.model.DoesNotExist:
            raise Http404(f"{table} #{pk} not found")
        if request.method == "POST":
            return self._apply_change(request, admin, obj,
                                      redirect=f"/admin/{table}/")
        body = self._render_form(admin, obj, action=f"/admin/{table}/{pk}/")
        body += (f'<form method="post" action="/admin/{table}/{pk}/delete/">'
                 f'<button type="submit">Delete</button></form>')
        return HttpResponse(_PAGE.format(
            title=f"{admin.model.__name__} #{pk}", root="/admin/",
            body=body))

    def add_view(self, request, table):
        admin = self.get(table)
        if request.method == "POST":
            obj = admin.model()
            return self._apply_change(request, admin, obj,
                                      redirect=f"/admin/{table}/")
        body = self._render_form(admin, None, action=f"/admin/{table}/add/")
        return HttpResponse(_PAGE.format(
            title=f"Add {admin.model.__name__}", root="/admin/", body=body))

    def delete_view(self, request, table, pk):
        admin = self.get(table)
        if request.method != "POST":
            return HttpResponseBadRequest(b"POST required")
        try:
            obj = admin.queryset().get(pk=pk)
        except admin.model.DoesNotExist:
            raise Http404(f"{table} #{pk} not found")
        obj.delete()
        return HttpResponseRedirect(f"/admin/{table}/")

    # ------------------------------------------------------------------
    def _apply_change(self, request, admin, obj, redirect):
        obj._state_db = self.db
        for field in admin.editable_fields():
            raw = request.POST.get(field.attname)
            if isinstance(field, BooleanField):
                setattr(obj, field.attname, raw is not None)
            elif raw is not None:
                if raw == "" and field.null:
                    setattr(obj, field.attname, None)
                else:
                    setattr(obj, field.attname, raw)
        try:
            obj.save(db=self.db)
        except ValidationError as exc:
            return HttpResponseBadRequest(
                escape("; ".join(exc.messages)).encode("utf-8"))
        except IntegrityError as exc:
            return HttpResponseBadRequest(escape(str(exc)).encode("utf-8"))
        return HttpResponseRedirect(redirect)

    def _render_form(self, admin, obj, action):
        rows = []
        for field in admin.editable_fields():
            value = getattr(obj, field.attname, None) if obj else \
                field.get_default()
            if isinstance(field, DateTimeField) and value is not None:
                value = field.to_db(value)
            if isinstance(field, BooleanField):
                widget = (f'<input type="checkbox" name="{field.attname}"'
                          f'{" checked" if value else ""}>')
            elif field.choices:
                options = "".join(
                    f'<option value="{escape(v)}"'
                    f'{" selected" if v == value else ""}>'
                    f"{escape(label)}</option>"
                    for v, label in field.choices)
                widget = (f'<select name="{field.attname}">{options}'
                          f"</select>")
            else:
                display = "" if value is None else value
                if isinstance(field, ForeignKey):
                    display = getattr(obj, field.attname, "") or "" \
                        if obj else ""
                widget = (f'<input name="{field.attname}" '
                          f'value="{escape(display)}">')
            rows.append(f"<p><label>{escape(field.verbose_name)}</label>"
                        f"{widget}</p>")
        return (f'<form method="post" action="{action}">'
                + "".join(rows) + '<button type="submit">Save</button></form>')

    # ------------------------------------------------------------------
    def routes(self):
        """URL patterns to mount (only on non-public deployments)."""
        from ..urls import path
        return [
            path("admin/", staff_required(self.index_view),
                 name="admin-index"),
            path("admin/<str:table>/", staff_required(self.changelist_view),
                 name="admin-list"),
            path("admin/<str:table>/add/", staff_required(self.add_view),
                 name="admin-add"),
            path("admin/<str:table>/<int:pk>/",
                 staff_required(self.change_view), name="admin-change"),
            path("admin/<str:table>/<int:pk>/delete/",
                 staff_required(self.delete_view), name="admin-delete"),
        ]
