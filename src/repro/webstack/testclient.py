"""In-process test client for :class:`WebApplication`.

Builds WSGI environs directly — no sockets — and maintains a cookie jar so
login sessions persist across requests, mirroring ``django.test.Client``.
All requests default to ``https`` because the portal requires SSL for
authenticated activity.
"""

from __future__ import annotations

import io
from urllib.parse import urlencode, urlsplit

from .http import HttpRequest


class Client:
    def __init__(self, app, *, secure=True, host="amp.ucar.edu"):
        self.app = app
        self.secure = secure
        self.host = host
        self.cookies = {}

    # ------------------------------------------------------------------
    def _environ(self, method, path, query="", body=b"", content_type="",
                 headers=None):
        environ = {
            "REQUEST_METHOD": method,
            "PATH_INFO": path,
            "QUERY_STRING": query,
            "CONTENT_TYPE": content_type,
            "CONTENT_LENGTH": str(len(body)),
            "HTTP_HOST": self.host,
            "wsgi.input": io.BytesIO(body),
            "wsgi.url_scheme": "https" if self.secure else "http",
        }
        for name, value in (headers or {}).items():
            key = "HTTP_" + name.upper().replace("-", "_")
            environ[key] = value
        if self.cookies:
            environ["HTTP_COOKIE"] = "; ".join(
                f"{k}={v}" for k, v in self.cookies.items())
        return environ

    def _absorb_cookies(self, response):
        for morsel in response.cookies.values():
            head = morsel.split(";", 1)[0]
            key, _, value = head.partition("=")
            if "Max-Age=0" in morsel:
                self.cookies.pop(key, None)
            else:
                self.cookies[key] = value

    def request(self, method, path, data=None, json_body=None,
                headers=None):
        parts = urlsplit(path)
        body, content_type = b"", ""
        query = parts.query
        if method in ("POST", "PUT") and data is not None:
            body = urlencode(data, doseq=True).encode("utf-8")
            content_type = "application/x-www-form-urlencoded"
        elif json_body is not None:
            import json as _json
            body = _json.dumps(json_body).encode("utf-8")
            content_type = "application/json"
        elif method == "GET" and data is not None:
            extra = urlencode(data, doseq=True)
            query = f"{query}&{extra}" if query else extra
        environ = self._environ(method, parts.path, query, body,
                                content_type, headers)
        request = HttpRequest(environ)
        response = self.app.handle(request)
        self._absorb_cookies(response)
        return response

    def get(self, path, data=None, headers=None):
        return self.request("GET", path, data, headers=headers)

    def post(self, path, data=None, json_body=None, headers=None):
        return self.request("POST", path, data, json_body,
                            headers=headers)

    # ------------------------------------------------------------------
    def login(self, username, password, login_path="/accounts/login/"):
        """POST the login form; returns True on redirect (success)."""
        response = self.post(login_path, {"username": username,
                                          "password": password})
        return response.status_code == 302

    def follow(self, response):
        """GET the target of a redirect response."""
        return self.get(response["Location"])
