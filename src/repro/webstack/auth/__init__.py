"""Authentication framework: users, password hashing, sessions, login.

Mirrors the Django ``auth`` app surface that AMP adopted wholesale:
``authenticate()``/``login()``/``logout()`` plus an auth middleware that
attaches ``request.user`` and ``request.session``, and a
``login_required`` view decorator.
"""

from __future__ import annotations

import datetime as _dt

from ..http import HttpResponseRedirect
from ..signals import user_logged_in, user_logged_out
from . import hashers
from .models import AUTH_MODELS, AnonymousUser, Session, User
from .sessions import SESSION_COOKIE_NAME, SESSION_LIFETIME, SessionStore

LOGIN_URL = "/accounts/login/"
_SESSION_USER_KEY = "_auth_user_id"


def authenticate(db, username, password):
    """Return the matching active user or None.

    Timing parity: the password check runs even for unknown usernames so
    account existence is not observable from response latency.
    """
    try:
        user = User.objects.using(db).get(username=username)
    except User.DoesNotExist:
        hashers.check_password(password, hashers.make_unusable_password())
        return None
    if not user.check_password(password):
        return None
    if not user.is_active:
        return None
    return user


def login(request, user):
    """Bind *user* to the request's session."""
    request.session.cycle_key()
    request.session[_SESSION_USER_KEY] = user.pk
    request.user = user
    user.last_login = _dt.datetime.utcnow()
    user.save()
    user_logged_in.send(user, request=request)


def logout(request):
    user = request.user
    request.session.flush()
    request.user = AnonymousUser()
    if getattr(user, "is_authenticated", False):
        user_logged_out.send(user, request=request)


class AuthMiddleware:
    """Attach ``request.session`` and ``request.user``; persist on exit."""

    def __init__(self, db):
        self.db = db

    def process_request(self, request):
        key = request.COOKIES.get(SESSION_COOKIE_NAME)
        request.session = SessionStore(self.db, key)
        user_id = request.session.get(_SESSION_USER_KEY)
        request.user = AnonymousUser()
        if user_id is not None:
            try:
                user = User.objects.using(self.db).get(pk=user_id)
                if user.is_active:
                    request.user = user
            except User.DoesNotExist:
                pass

    def process_response(self, request, response):
        session = getattr(request, "session", None)
        if session is not None and session.modified:
            if session.session_key is not None:
                session.save()
                response.set_cookie(
                    SESSION_COOKIE_NAME, session.session_key,
                    max_age=SESSION_LIFETIME.total_seconds(),
                    secure=request.is_secure)
            else:
                response.delete_cookie(SESSION_COOKIE_NAME)
        return response


def login_required(view):
    """Redirect anonymous requests to the login page."""
    def wrapper(request, **kwargs):
        if not getattr(request.user, "is_authenticated", False):
            return HttpResponseRedirect(
                f"{LOGIN_URL}?next={request.path}")
        return view(request, **kwargs)
    wrapper.__name__ = getattr(view, "__name__", "view")
    wrapper.__doc__ = view.__doc__
    return wrapper


def staff_required(view):
    """403 unless the user is staff (admin interface gate)."""
    from ..http import HttpResponseForbidden

    def wrapper(request, **kwargs):
        user = request.user
        if not (getattr(user, "is_authenticated", False) and user.is_staff):
            return HttpResponseForbidden(b"Staff access required")
        return view(request, **kwargs)
    wrapper.__name__ = getattr(view, "__name__", "view")
    return wrapper


def create_user(db, username, email, password, **extra):
    """Create a user with a hashed password."""
    user = User(username=username, email=email, **extra)
    user.set_password(password)
    user.save(db=db)
    return user


def create_superuser(db, username, email, password):
    return create_user(db, username, email, password, is_active=True,
                       is_staff=True, is_superuser=True)


__all__ = [
    "AUTH_MODELS", "AnonymousUser", "AuthMiddleware", "LOGIN_URL",
    "SESSION_COOKIE_NAME", "Session", "SessionStore", "User",
    "authenticate", "create_superuser", "create_user", "hashers", "login",
    "login_required", "logout", "staff_required",
]
