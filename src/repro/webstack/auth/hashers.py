"""Password hashing (PBKDF2-SHA256, Django wire format).

Stored hashes look like ``pbkdf2_sha256$<iterations>$<salt>$<b64digest>``
so they are self-describing and iteration counts can be raised without
invalidating existing accounts.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import secrets

ALGORITHM = "pbkdf2_sha256"
DEFAULT_ITERATIONS = 60_000


def make_password(password, *, iterations=DEFAULT_ITERATIONS, salt=None):
    """Hash *password* for storage."""
    if salt is None:
        salt = secrets.token_hex(8)
    if "$" in salt:
        raise ValueError("salt may not contain '$'")
    digest = hashlib.pbkdf2_hmac("sha256", password.encode("utf-8"),
                                 salt.encode("utf-8"), iterations)
    encoded = base64.b64encode(digest).decode("ascii")
    return f"{ALGORITHM}${iterations}${salt}${encoded}"


def check_password(password, stored):
    """Constant-time verification of *password* against a stored hash."""
    try:
        algorithm, iterations, salt, encoded = stored.split("$", 3)
        iterations = int(iterations)
    except (AttributeError, ValueError):
        return False
    if algorithm != ALGORITHM:
        return False
    digest = hashlib.pbkdf2_hmac("sha256", password.encode("utf-8"),
                                 salt.encode("utf-8"), iterations)
    expected = base64.b64decode(encoded.encode("ascii"))
    return hmac.compare_digest(digest, expected)


def is_usable_password(stored):
    """False for the sentinel used to lock an account."""
    return bool(stored) and not stored.startswith("!")


def make_unusable_password():
    return "!" + secrets.token_hex(16)
