"""The auth framework's persistent models.

The paper: "we also adopted Django's built-in authentication 'auth'
framework [... and] extended [it] to support additional information
required by AMP and TeraGrid, such as data provenance and user
authentication metadata."  Extension happens through a one-to-one profile
model in the core application; the base ``User`` here carries only the
framework-generic columns.
"""

from __future__ import annotations

import datetime as _dt
import secrets

from ..orm import (BooleanField, CharField, DateTimeField, EmailField,
                   JSONField, Model)
from . import hashers


class AnonymousUser:
    """The request.user before login.  Never persisted."""

    pk = None
    username = ""
    is_active = False
    is_staff = False
    is_superuser = False

    @property
    def is_authenticated(self):
        return False

    def has_perm(self, perm):
        return False

    def __repr__(self):  # pragma: no cover
        return "<AnonymousUser>"


class User(Model):
    """A gateway account.

    ``is_staff`` gates the (non-public) admin interface; ``is_active``
    is False until an administrator approves the registration — AMP
    accounts are approved manually after the CAPTCHA-gated request.
    """

    username = CharField(max_length=150, unique=True)
    email = EmailField(max_length=254)
    password = CharField(max_length=256, editable=False)
    first_name = CharField(max_length=150, default="")
    last_name = CharField(max_length=150, default="")
    is_active = BooleanField(default=False)
    is_staff = BooleanField(default=False)
    is_superuser = BooleanField(default=False)
    date_joined = DateTimeField(auto_now_add=True)
    last_login = DateTimeField(null=True)
    # Framework-generic extension point (paper: provenance + TeraGrid
    # authentication metadata live here or in a linked profile).
    metadata = JSONField(null=True)

    class Meta:
        table_name = "auth_user"
        ordering = ["username"]

    @property
    def is_authenticated(self):
        return True

    def set_password(self, raw):
        self.password = hashers.make_password(raw)

    def check_password(self, raw):
        return hashers.check_password(raw, self.password)

    def has_perm(self, perm):
        return bool(self.is_superuser)

    def get_full_name(self):
        return f"{self.first_name} {self.last_name}".strip() or self.username

    def __repr__(self):  # pragma: no cover
        return f"<User: {self.username}>"


class Session(Model):
    """Server-side session rows keyed by an opaque cookie token."""

    session_key = CharField(max_length=64, unique=True)
    user_id_ref = CharField(max_length=32, null=True)
    data = JSONField(default=dict)
    expires_at = DateTimeField(null=True)

    class Meta:
        table_name = "auth_session"

    @staticmethod
    def new_key():
        return secrets.token_urlsafe(32)

    def is_expired(self, now=None):
        if self.expires_at is None:
            return False
        now = now or _dt.datetime.utcnow()
        return now >= self.expires_at


AUTH_MODELS = [User, Session]
