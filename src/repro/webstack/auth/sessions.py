"""Cookie-backed server-side sessions."""

from __future__ import annotations

import datetime as _dt

from .models import Session

SESSION_COOKIE_NAME = "sessionid"
SESSION_LIFETIME = _dt.timedelta(hours=12)


class SessionStore:
    """Dict-like view over one Session row.

    Mutations set ``modified``; the response phase persists and (re)sets
    the cookie only when something changed.
    """

    def __init__(self, db, session_key=None):
        self.db = db
        self.modified = False
        self._row = None
        if session_key:
            try:
                row = Session.objects.using(db).get(session_key=session_key)
                if not row.is_expired():
                    self._row = row
            except Session.DoesNotExist:
                pass

    # -- dict API --------------------------------------------------------
    def _data(self):
        return self._row.data if self._row is not None else {}

    def get(self, key, default=None):
        return self._data().get(key, default)

    def __getitem__(self, key):
        return self._data()[key]

    def __setitem__(self, key, value):
        self._ensure_row()
        self._row.data[key] = value
        self.modified = True

    def __contains__(self, key):
        return key in self._data()

    def pop(self, key, default=None):
        if self._row is None:
            return default
        self.modified = True
        return self._row.data.pop(key, default)

    def keys(self):
        return self._data().keys()

    # -- lifecycle ---------------------------------------------------------
    def _ensure_row(self):
        if self._row is None:
            self._row = Session(
                session_key=Session.new_key(), data={},
                expires_at=_dt.datetime.utcnow() + SESSION_LIFETIME)
            self.modified = True

    @property
    def session_key(self):
        return self._row.session_key if self._row else None

    def cycle_key(self):
        """Replace the session key (post-login fixation defence)."""
        if self._row is None:
            self._ensure_row()
            return
        old_data = dict(self._row.data)
        if self._row.pk is not None:
            self._row.delete()
        self._row = Session(session_key=Session.new_key(), data=old_data,
                            expires_at=_dt.datetime.utcnow()
                            + SESSION_LIFETIME)
        self.modified = True

    def flush(self):
        """Destroy the session (logout)."""
        if self._row is not None and self._row.pk is not None:
            self._row.delete()
        self._row = None
        self.modified = True

    def save(self):
        if self._row is not None:
            self._row.save(db=self.db)

    def exists(self):
        return self._row is not None and self._row.pk is not None
