"""Database connections with role-based table permissions.

The AMP architecture places the web portal, the GridAMP daemon, and the
database on three separate servers, and grants each process's database
account only the table privileges it needs.  The paper:

    "Incoming user data is parsed by the web server and uploaded to
    database tables with strict data type constraints. [...] even a full
    root compromise of the web server does not provide access to any
    credentials used for access to any other system."

We reproduce that privilege model at the connection layer: a
:class:`Database` is opened *as a role*, and every statement the ORM
compiles declares the operation and target table so the grant table can be
checked before SQLite ever sees the SQL.  Raw SQL is only accepted from
the ``admin`` role.

Multiple logical "servers" sharing one database file is modelled by
opening several :class:`Database` objects (one per role) against the same
path — or against the same ``:memory:`` store via SQLite shared-cache URIs.
"""

from __future__ import annotations

import itertools
import re
import sqlite3
import threading
import time
from collections import OrderedDict

from .exceptions import ConnectionError, IntegrityError, PermissionDenied

#: Operations a grant can name.
OPERATIONS = ("select", "insert", "update", "delete", "create")

_memory_uri_counter = itertools.count(1)


class StatementCache:
    """Bounded LRU over the SQL text one connection has executed.

    Python's ``sqlite3`` keeps a real prepared-statement cache keyed by
    SQL string inside each connection; it is invisible from Python.
    This mirror tracks the same key space with the same capacity so the
    reuse rate becomes observable: a *hit* here means the identical SQL
    text was handed to the driver again and its prepared statement was
    reusable (the compiled-query cache upstream is what makes hot-path
    SQL text byte-identical call after call).
    """

    def __init__(self, capacity=128):
        self.capacity = int(capacity)
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def note(self, sql):
        """Record one execution of *sql*; returns True on reuse."""
        if sql in self._entries:
            self._entries.move_to_end(sql)
            self.hits += 1
            return True
        self.misses += 1
        self._entries[sql] = None
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return False

    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self):
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "size": len(self._entries),
                "hit_rate": self.hit_rate()}


class Grant:
    """Privilege set for one role: ``{table_name: set(operations)}``.

    The wildcard table ``"*"`` grants the listed operations on every
    table.  Schema creation requires an explicit ``create`` grant.
    """

    def __init__(self, table_ops=None, *, allow_raw_sql=False):
        self.table_ops = {t: set(ops) for t, ops in (table_ops or {}).items()}
        self.allow_raw_sql = allow_raw_sql

    def allows(self, operation, table):
        ops = self.table_ops.get(table, set()) | self.table_ops.get("*", set())
        return operation in ops

    @classmethod
    def all_privileges(cls):
        return cls({"*": set(OPERATIONS)}, allow_raw_sql=True)

    @classmethod
    def read_only(cls, tables=("*",)):
        return cls({t: {"select"} for t in tables})


class RoleRegistry:
    """Named grants for a deployment.

    ``admin`` is always present with full privileges (it is the role the
    developers' non-public admin interface uses).
    """

    def __init__(self):
        self._grants = {"admin": Grant.all_privileges()}

    def define(self, role, grant):
        self._grants[role] = grant

    def grant_for(self, role):
        try:
            return self._grants[role]
        except KeyError:
            raise PermissionDenied(f"Unknown database role: {role!r}")

    def roles(self):
        return sorted(self._grants)


class Database:
    """A role-scoped SQLite connection.

    Parameters
    ----------
    path:
        Filesystem path, or ``":memory:"`` for a private in-memory store,
        or a ``file:...?cache=shared`` URI to share an in-memory store
        between several role connections (see :func:`shared_memory_uri`).
    role:
        Role name looked up in *roles*; defaults to ``admin``.
    roles:
        A :class:`RoleRegistry`; defaults to a registry containing only
        ``admin``.
    """

    def __init__(self, path=":memory:", role="admin", roles=None, *,
                 wal=False, busy_timeout_s=5.0, read_only=False,
                 write_gate=None, statement_cache_size=128):
        self.path = path
        self.role = role
        self.roles = roles or RoleRegistry()
        self._grant = self.roles.grant_for(role)
        self._local = threading.local()
        self._lock = threading.RLock()
        #: WAL journal mode: readers never block the writer and vice
        #: versa.  Only meaningful for file-backed stores — an
        #: in-memory database silently keeps its ``memory`` journal.
        self.wal = bool(wal)
        #: Every connection waits this long on a locked database before
        #: surfacing SQLITE_BUSY, so brief writer bursts never bubble up
        #: as errors (set as ``PRAGMA busy_timeout`` at connect time).
        self.busy_timeout_s = float(busy_timeout_s)
        #: A replica reader connection: refuses every write outright —
        #: the router must never have sent it one (defence in depth on
        #: top of role grants).
        self.read_only = bool(read_only)
        #: Single-writer discipline: when several role connections share
        #: one store, they share this reentrant lock and every write
        #: statement (and every transaction scope) funnels through it —
        #: one writer at a time at the application layer, matching
        #: SQLite's own one-writer rule without ever hitting
        #: SQLITE_BUSY on the hot path.
        self.write_gate = write_gate
        #: Journal mode actually reported by SQLite at connect time
        #: (``wal`` for file stores in WAL mode, ``memory`` for
        #: in-memory stores); None until the first connection opens.
        self.journal_mode = None
        #: Mirror of the driver's per-connection prepared-statement
        #: cache (see :class:`StatementCache`).
        self.statement_cache_size = int(statement_cache_size)
        self.statements = StatementCache(self.statement_cache_size)
        #: Slow-statement log: when ``slow_statement_s`` is a number,
        #: any statement whose execution (lock wait included) takes
        #: longer fires ``on_slow_statement(sql, duration_s, operation,
        #: table)``.  The SQL text carries only ``?`` placeholders —
        #: parameter values are never handed to the log.
        self.slow_statement_s = None
        self.on_slow_statement = None
        # Statement log: (operation, table) tuples, used by the security
        # audit in tests/benches to prove what each role actually did.
        self.statement_log = []
        self.log_statements = False
        # Cheap per-connection round-trip counter: one increment per
        # statement the ORM executes.  ``count_queries()`` snapshots it
        # so tests and benches can assert round-trip budgets.
        self.queries_executed = 0
        self.queries_by_operation = {}
        # Optional ``(operation, table)`` callback fired per statement;
        # the observability layer attaches one to feed per-role query
        # counters without the ORM importing it.
        self.on_execute = None
        # Serving-tier resilience hooks (see repro.serve).  Both are
        # ``callable(operation, table)`` and default to None (zero cost
        # when the tier is off):
        #
        # - ``deadline_hook`` — installed per request by the deadline
        #   middleware; raises :class:`DeadlineExceeded` once the
        #   request's time budget is spent, so no further statement
        #   starts (and a statement whose injected latency spent the
        #   budget is discarded).
        # - ``fault_hook`` — the overload chaos harness's injection
        #   point: adds (virtual) latency and/or raises
        #   :class:`DatabaseUnavailable`.
        #
        # ``statement_observer`` is the health tracker's intake: a
        # begin-callback called with ``(operation, table)`` before a
        # statement runs, returning a finish-callback called with the
        # exception (or None) once the statement ends.  Because it
        # wraps the *actual* execution — not just the injection hooks
        # — the tracker sees genuine sqlite errors and real statement
        # latency, not only injected ones.
        self.deadline_hook = None
        self.fault_hook = None
        self.statement_observer = None

    # ------------------------------------------------------------------
    @property
    def connection(self):
        conn = getattr(self._local, "conn", None)
        if conn is None:
            try:
                conn = sqlite3.connect(
                    self.path, uri=self.path.startswith("file:"),
                    detect_types=0, check_same_thread=False,
                    cached_statements=max(self.statement_cache_size, 16))
            except sqlite3.Error as exc:
                raise ConnectionError(str(exc)) from exc
            conn.execute("PRAGMA foreign_keys = ON")
            # Every connection gets a busy handler: a reader landing on
            # a momentarily-locked database waits instead of erroring.
            conn.execute(f"PRAGMA busy_timeout = "
                         f"{int(self.busy_timeout_s * 1000)}")
            if self.wal:
                # WAL + NORMAL sync: concurrent readers during writes,
                # commit durability bounded by checkpoints — the
                # standard serving-tier configuration.
                conn.execute("PRAGMA journal_mode = WAL")
                conn.execute("PRAGMA synchronous = NORMAL")
            cur = conn.execute("PRAGMA journal_mode")
            self.journal_mode = cur.fetchone()[0]
            conn.row_factory = sqlite3.Row
            self._local.conn = conn
        return conn

    def close(self):
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    # ------------------------------------------------------------------
    def check_permission(self, operation, table):
        """Raise :class:`PermissionDenied` unless the role allows it."""
        if not self._grant.allows(operation, table):
            raise PermissionDenied(
                f"Role {self.role!r} may not {operation.upper()} on "
                f"table {table!r}")

    def execute(self, sql, params=(), *, operation, table):
        """Run one compiled statement after a grant check.

        All ORM-generated SQL flows through here with its operation and
        table declared, which is what makes the grant check airtight: the
        compiler, not a SQL parser, is the source of truth.
        """
        self.check_permission(operation, table)
        if self.read_only and operation != "select":
            raise PermissionDenied(
                f"Connection {self.path!r} is a read-only replica "
                f"reader; it may not {operation.upper()} on {table!r}")
        if self.statement_observer is None:
            return self._execute_inner(sql, params, operation, table)
        finish = self.statement_observer(operation, table)
        try:
            result = self._execute_inner(sql, params, operation, table)
        except BaseException as exc:
            finish(exc)
            raise
        finish(None)
        return result

    def _execute_inner(self, sql, params, operation, table):
        if self.deadline_hook is not None:
            # Budget check before any work starts.
            self.deadline_hook(operation, table)
        if self.fault_hook is not None:
            # Chaos injection: may advance the (virtual) clock to model
            # a slow database, or raise DatabaseUnavailable outright.
            self.fault_hook(operation, table)
            if self.deadline_hook is not None:
                # Injected latency may have spent the budget: the
                # statement "ran", but its requester is out of time —
                # discard the result rather than keep building a page
                # nobody will wait for.
                self.deadline_hook(operation, table)
        self.queries_executed += 1
        self.queries_by_operation[operation] = \
            self.queries_by_operation.get(operation, 0) + 1
        if self.on_execute is not None:
            self.on_execute(operation, table)
        if self.log_statements:
            self.statement_log.append((operation, table))
        self.statements.note(sql)
        gate = self.write_gate if (self.write_gate is not None
                                   and operation != "select") else None
        started = (time.perf_counter()
                   if self.slow_statement_s is not None else None)
        if gate is not None:
            gate.acquire()
        try:
            with self._lock:
                in_txn = getattr(self._local, "txn_depth", 0) > 0
                try:
                    cur = self.connection.execute(sql, params)
                    if operation != "select" and not in_txn:
                        self.connection.commit()
                    return cur
                except sqlite3.IntegrityError as exc:
                    if not in_txn:
                        self.connection.rollback()
                    raise IntegrityError(str(exc)) from exc
        finally:
            if gate is not None:
                gate.release()
            if started is not None:
                duration = time.perf_counter() - started
                if duration > self.slow_statement_s \
                        and self.on_slow_statement is not None:
                    self.on_slow_statement(sql, duration, operation,
                                           table)

    def executescript(self, script):
        """Run a raw script; restricted to roles with ``allow_raw_sql``.

        Scripts flow through the same hook chain as :meth:`execute` —
        grant check first, then deadline/fault hooks, the
        ``statement_observer``, the query counters, and the statement
        log (as one ``("script", "<script>")`` round trip) — so a
        schema-bootstrap script can neither dodge an injected outage
        nor hide from the health tracker or a round-trip budget.
        """
        if not self._grant.allow_raw_sql:
            raise PermissionDenied(
                f"Role {self.role!r} may not execute raw SQL")
        if self.read_only:
            raise PermissionDenied(
                f"Connection {self.path!r} is a read-only replica "
                "reader; it may not run raw scripts")
        operation, table = "script", "<script>"
        finish = (self.statement_observer(operation, table)
                  if self.statement_observer is not None else None)
        try:
            if self.deadline_hook is not None:
                self.deadline_hook(operation, table)
            if self.fault_hook is not None:
                self.fault_hook(operation, table)
                if self.deadline_hook is not None:
                    self.deadline_hook(operation, table)
            self.queries_executed += 1
            self.queries_by_operation[operation] = \
                self.queries_by_operation.get(operation, 0) + 1
            if self.on_execute is not None:
                self.on_execute(operation, table)
            if self.log_statements:
                self.statement_log.append((operation, table))
            gate = self.write_gate
            if gate is not None:
                gate.acquire()
            try:
                with self._lock:
                    self.connection.executescript(script)
                    self.connection.commit()
            finally:
                if gate is not None:
                    gate.release()
        except BaseException as exc:
            if finish is not None:
                finish(exc)
            raise
        if finish is not None:
            finish(None)

    def atomic(self):
        """Context manager for a transaction (BEGIN ... COMMIT/ROLLBACK)."""
        return _Atomic(self)

    def count_queries(self):
        """Context manager counting statements executed in its scope.

        Usage::

            with db.count_queries() as counter:
                daemon.poll_once()
            assert counter.count <= 10
            assert counter.by_operation.get("update", 0) <= 2

        The counter is the testing surface for the batch query layer:
        set-oriented call sites assert a *fixed* round-trip budget
        regardless of row count, so an accidental reintroduction of a
        per-row loop fails loudly.
        """
        return QueryCounter(self)

    def ping(self):
        """One trivial statement through the resilience hooks.

        The readiness probe: exercises ``deadline_hook``/``fault_hook``
        (so an injected outage fails the probe exactly like it fails a
        page render) and a constant ``SELECT 1`` on the raw connection.
        Touches no table, needs no grant, and does not count against
        any round-trip budget.
        """
        finish = (self.statement_observer("select", "<ping>")
                  if self.statement_observer is not None else None)
        try:
            if self.deadline_hook is not None:
                self.deadline_hook("select", "<ping>")
            if self.fault_hook is not None:
                self.fault_hook("select", "<ping>")
            with self._lock:
                self.connection.execute("SELECT 1")
        except BaseException as exc:
            if finish is not None:
                finish(exc)
            raise
        if finish is not None:
            finish(None)

    def table_names(self):
        self.check_permission("select", "sqlite_master")
        with self._lock:
            cur = self.connection.execute(
                "SELECT name FROM sqlite_master WHERE type='table' "
                "AND name NOT LIKE 'sqlite_%' ORDER BY name")
            return [r[0] for r in cur.fetchall()]

    def __repr__(self):  # pragma: no cover
        return f"<Database {self.path!r} role={self.role!r}>"


class _Atomic:
    """Transaction scope: statements inside are committed or rolled
    back together.  Python's sqlite3 driver auto-begins a transaction
    at the first DML statement; we just suppress per-statement commits
    while the scope is open and finish it on exit."""

    def __init__(self, db):
        self.db = db

    def __enter__(self):
        # Lock order: write gate (shared across the deployment's writer
        # connections — the single-writer discipline) before the
        # per-connection lock.  Both are reentrant, so nested scopes
        # and writes inside the transaction re-enter cleanly.
        if self.db.write_gate is not None:
            self.db.write_gate.acquire()
        self.db._lock.acquire()
        self.db._local.txn_depth = getattr(self.db._local, "txn_depth",
                                           0) + 1
        return self.db

    def __exit__(self, exc_type, exc, tb):
        try:
            self.db._local.txn_depth -= 1
            if self.db._local.txn_depth == 0:
                if exc_type is None:
                    self.db.connection.commit()
                else:
                    self.db.connection.rollback()
        finally:
            self.db._lock.release()
            if self.db.write_gate is not None:
                self.db.write_gate.release()
        return False


class QueryCounter:
    """Live view of queries executed on one connection since ``__enter__``.

    ``count`` and ``by_operation`` stay readable after the scope closes
    (they freeze at exit time).
    """

    def __init__(self, db):
        self.db = db
        self._start_total = 0
        self._start_ops = {}
        self._final_total = None
        self._final_ops = None

    def __enter__(self):
        self._start_total = self.db.queries_executed
        self._start_ops = dict(self.db.queries_by_operation)
        return self

    def __exit__(self, exc_type, exc, tb):
        self._final_total = self.count
        self._final_ops = self.by_operation
        return False

    @property
    def count(self):
        if self._final_total is not None:
            return self._final_total
        return self.db.queries_executed - self._start_total

    @property
    def by_operation(self):
        if self._final_ops is not None:
            return dict(self._final_ops)
        return {op: total - self._start_ops.get(op, 0)
                for op, total in self.db.queries_by_operation.items()
                if total - self._start_ops.get(op, 0)}

    def __repr__(self):  # pragma: no cover
        return f"<QueryCounter count={self.count} {self.by_operation}>"


def shared_memory_uri(name=None):
    """Return a URI for an in-memory database shareable across connections.

    Each call without *name* mints a fresh store, so tests get isolation
    for free while the portal/daemon role pair in one deployment share
    state by using the same URI.
    """
    if name is None:
        name = f"webstack_mem_{next(_memory_uri_counter)}"
    name = re.sub(r"[^A-Za-z0-9_]", "_", name)
    return f"file:{name}?mode=memory&cache=shared"


def is_memory_uri(uri):
    """True when *uri* names an in-memory store (no WAL possible)."""
    return uri == ":memory:" or "mode=memory" in uri


class DeploymentDatabases:
    """The multi-server database layout of the AMP deployment.

    One shared store, three role-scoped connections:

    - ``portal``  — the public web server's account,
    - ``daemon``  — the GridAMP daemon's account,
    - ``admin``   — the developers' account (full privileges).

    A keeper connection holds the shared in-memory store alive for the
    lifetime of this object.

    With ``routed=True`` the layout becomes the primary/replica
    topology of the data tier (see ``orm/router.py``): the store moves
    to WAL journal mode when file-backed, one reentrant *write gate*
    is shared by every writer connection (single-writer discipline),
    and ``portal``/``daemon`` become :class:`ReplicaRouter` objects
    that send reads to per-role read-only reader connections and funnel
    every write through the gated primary.  ``admin`` stays a plain
    (gated) connection — schema bootstrap and developer tooling want
    the primary's view unconditionally.
    """

    def __init__(self, roles, uri=None, *, routed=False, replicas=2,
                 wal=None, busy_timeout_s=5.0, clock=None,
                 pin_window_s=5.0):
        self.uri = uri or shared_memory_uri()
        self.roles = roles
        self.routed = bool(routed)
        self._keeper = sqlite3.connect(self.uri, uri=True,
                                       check_same_thread=False)
        if not routed:
            self.write_gate = None
            self.admin = Database(self.uri, role="admin", roles=roles)
            self.portal = Database(self.uri, role="portal", roles=roles)
            self.daemon = Database(self.uri, role="daemon", roles=roles)
            return
        from .router import ReplicaRouter, WriteSequence
        if wal is None:
            wal = not is_memory_uri(self.uri)
        self.write_gate = threading.RLock()
        sequence = WriteSequence()
        n_replicas = max(0, int(replicas))

        def primary(role):
            return Database(self.uri, role=role, roles=roles, wal=wal,
                            busy_timeout_s=busy_timeout_s,
                            write_gate=self.write_gate)

        def readers(role):
            return [Database(self.uri, role=role, roles=roles, wal=wal,
                             busy_timeout_s=busy_timeout_s,
                             read_only=True)
                    for _ in range(n_replicas)]

        self.admin = primary("admin")
        self.portal = ReplicaRouter(primary("portal"),
                                    readers("portal"), clock=clock,
                                    pin_window_s=pin_window_s,
                                    sequence=sequence)
        self.daemon = ReplicaRouter(primary("daemon"),
                                    readers("daemon"), clock=clock,
                                    pin_window_s=pin_window_s,
                                    sequence=sequence)

    def close(self):
        for db in (self.admin, self.portal, self.daemon):
            db.close()
        self._keeper.close()
