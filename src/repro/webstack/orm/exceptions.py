"""Exception hierarchy for the webstack ORM.

The ORM deliberately mirrors the exception surface of the Django ORM that
the AMP paper relied on: lookups that find nothing raise
``Model.DoesNotExist`` (a per-model subclass of :class:`ObjectDoesNotExist`),
ambiguous ``get()`` calls raise ``MultipleObjectsReturned``, and validation
problems raise :class:`ValidationError` with a per-field error dict.
"""

from __future__ import annotations


class ORMError(Exception):
    """Base class for all ORM-level errors."""


class ObjectDoesNotExist(ORMError):
    """Requested row does not exist.

    Each model class carries its own subclass as ``Model.DoesNotExist`` so
    callers can catch misses for one model without masking others.
    """


class MultipleObjectsReturned(ORMError):
    """``get()`` matched more than one row."""


class FieldError(ORMError):
    """A query referenced an unknown field or used an unknown lookup."""


class IntegrityError(ORMError):
    """A database constraint (unique, foreign key, not-null) was violated."""


class PermissionDenied(ORMError):
    """The active database role is not granted the attempted operation.

    This implements the paper's security posture: the public web portal's
    database role has no business issuing, say, ``DELETE`` against the jobs
    table, and the connection layer refuses it outright.
    """


class ConnectionError(ORMError):
    """Database connection was unusable or misconfigured."""


class DeadlineExceeded(ORMError):
    """The current request's time budget is spent.

    Raised by a connection's ``deadline_hook`` (installed per request by
    the serving tier) before a statement runs, so an over-budget request
    stops doing database work and unwinds into a plain-language 504
    instead of holding its worker.  The message is shown to the user —
    keep it jargon-free.
    """


class DatabaseUnavailable(ConnectionError):
    """The database did not answer (outage, injected or real).

    Raised by a connection's ``fault_hook`` — the serving tier's chaos
    harness — or by wrappers around genuinely failing connections.  The
    serving tier turns it into a 503 (or a stale cached copy of the
    page, when one is on hand).
    """


class ValidationError(ORMError):
    """Field-level or form-level validation failure.

    Parameters
    ----------
    message:
        Either a single message string or a mapping of field name to a
        list of message strings.
    """

    def __init__(self, message):
        if isinstance(message, dict):
            self.error_dict = {k: list(v) if isinstance(v, (list, tuple)) else [v]
                               for k, v in message.items()}
            self.messages = [m for msgs in self.error_dict.values() for m in msgs]
        else:
            self.error_dict = None
            self.messages = [str(message)]
        super().__init__("; ".join(self.messages))
