"""A from-scratch Django-style ORM over SQLite.

This package is the substrate standing in for the Django ORM the AMP
paper built on: declarative models with strictly-typed fields, lazy
chainable QuerySets, per-role database connections with table grants, and
on-demand schema generation.  It works identically inside the web portal
and inside standalone programs (the GridAMP daemon) — the property the
paper calls out as the reason a single code base could serve both.
"""

from .aggregates import Avg, Count, Max, Min, Sum
from .connection import (Database, DeploymentDatabases, Grant, RoleRegistry,
                         StatementCache, shared_memory_uri)
from .exceptions import (ConnectionError, FieldError, IntegrityError,
                         MultipleObjectsReturned, ObjectDoesNotExist,
                         ORMError, PermissionDenied, ValidationError)
from .fields import (AutoField, BooleanField, CharField, DateTimeField,
                     EmailField, Field, FloatField, ForeignKey, IntegerField,
                     JSONField, TextField)
from .manager import Manager
from .models import Model, clear_registry, get_registered_model
from .query import CompiledQueryCache, Q, QuerySet, compiled_cache
from .router import ReplicaRouter, WriteSequence
from .schema import (bind, create_all, create_table_sql, drop_all,
                     required_grants, topological_order)

__all__ = [
    "AutoField", "Avg", "BooleanField", "CharField", "CompiledQueryCache",
    "ConnectionError", "Count", "Database", "Max", "Min", "Sum",
    "DateTimeField", "DeploymentDatabases", "EmailField", "Field",
    "FieldError", "FloatField", "ForeignKey", "Grant", "IntegerField",
    "IntegrityError", "JSONField", "Manager", "Model",
    "MultipleObjectsReturned", "ORMError", "ObjectDoesNotExist",
    "PermissionDenied", "Q", "QuerySet", "ReplicaRouter", "RoleRegistry",
    "StatementCache", "TextField", "ValidationError", "WriteSequence",
    "bind", "clear_registry", "compiled_cache", "create_all",
    "create_table_sql", "drop_all", "get_registered_model",
    "required_grants", "shared_memory_uri", "topological_order",
]
