"""Model base class, metaclass, and the model registry.

The metaclass collects declared :class:`~repro.webstack.orm.fields.Field`
instances into ``Model._meta`` (declaration order preserved), mints the
per-model ``DoesNotExist``/``MultipleObjectsReturned`` exceptions, installs
a default manager, adds reverse accessors for foreign keys, and registers
the model so string-named ``ForeignKey("app.Model")`` references resolve.

Single-table model inheritance is deliberately *not* implemented — the
paper's workflow classes use plain Python inheritance over a single base
table ("the use of inheritance to support AMP's two job types with a
single base class"), which proxy-style subclassing supports (see
``Meta.proxy_of`` in the core models).
"""

from __future__ import annotations

from .exceptions import (FieldError, MultipleObjectsReturned,
                         ObjectDoesNotExist, ValidationError)
from .fields import AutoField, DateTimeField, Field, ForeignKey
from .manager import Manager

#: Global registry: "ModelName" -> model class.
_model_registry = {}


def get_registered_model(name):
    try:
        return _model_registry[name]
    except KeyError:
        raise FieldError(f"No model registered under name {name!r}")


def clear_registry():
    """Testing hook: forget registered models (does not drop tables)."""
    _model_registry.clear()


class Options:
    """``Model._meta`` — collected schema information for one model."""

    def __init__(self, model_name, meta_cls):
        self.model_name = model_name
        self.fields = []
        self._by_name = {}
        self.table_name = getattr(meta_cls, "table_name", None) \
            or model_name.lower()
        self.ordering = list(getattr(meta_cls, "ordering", []) or [])
        self.unique_together = [tuple(g) for g in
                                getattr(meta_cls, "unique_together", [])]
        # Declarative secondary indexes: a list of field-name tuples
        # (single names accepted), emitted by schema.create_table_sql.
        self.indexes = [(g,) if isinstance(g, str) else tuple(g)
                        for g in getattr(meta_cls, "indexes", []) or []]
        # Reverse relations: related_name -> (referencing model, FK
        # field).  Filled by _install_reverse_accessor; drives
        # prefetch_related for reverse FK sets.
        self.related_objects = {}
        self.verbose_name = getattr(meta_cls, "verbose_name",
                                    model_name.lower())
        self.abstract = bool(getattr(meta_cls, "abstract", False))
        self.database = None   # bound by schema.bind()
        self.pk = None
        self.model = None

    def add_field(self, field):
        self.fields.append(field)
        self.fields.sort(key=lambda f: f._order)
        self._by_name[field.name] = field
        self._by_name[field.attname] = field
        if field.primary_key:
            self.pk = field

    def field_by_any_name(self, name):
        """Look a field up by its name or attname (``fk`` or ``fk_id``)."""
        return self._by_name.get(name)

    def concrete_fields(self):
        return list(self.fields)

    def editable_fields(self):
        return [f for f in self.fields if f.editable and not f.primary_key]

    def foreign_keys(self):
        return [f for f in self.fields if isinstance(f, ForeignKey)]


class ModelMeta(type):
    def __new__(mcs, name, bases, attrs):
        parents = [b for b in bases if isinstance(b, ModelMeta)]
        if not parents:
            return super().__new__(mcs, name, bases, attrs)

        meta_cls = attrs.pop("Meta", None)
        opts = Options(name, meta_cls)

        # Inherit fields from abstract parents (copy, preserving order).
        inherited = []
        for base in parents:
            base_meta = getattr(base, "_meta", None)
            if base_meta is not None and base_meta.abstract:
                inherited.extend(base_meta.fields)

        module = attrs.get("__module__")
        new_cls = super().__new__(mcs, name, bases, {
            k: v for k, v in attrs.items()
            if not isinstance(v, (Field, Manager))})
        new_cls._meta = opts
        opts.model = new_cls

        for field in inherited:
            clone = _copy_field(field)
            clone.contribute_to_class(new_cls, field.name)

        declared_fields = [(k, v) for k, v in attrs.items()
                           if isinstance(v, Field)]
        declared_fields.sort(key=lambda kv: kv[1]._order)
        for fname, field in declared_fields:
            field.contribute_to_class(new_cls, fname)

        if not opts.abstract and opts.pk is None:
            pk = AutoField()
            pk.contribute_to_class(new_cls, "id")

        # Per-model exceptions.
        new_cls.DoesNotExist = type(
            "DoesNotExist", (ObjectDoesNotExist,), {"__module__": module})
        new_cls.MultipleObjectsReturned = type(
            "MultipleObjectsReturned", (MultipleObjectsReturned,),
            {"__module__": module})

        # Managers.
        managers = [(k, v) for k, v in attrs.items()
                    if isinstance(v, Manager)]
        if not managers and not opts.abstract:
            managers = [("objects", Manager())]
        for mname, manager in managers:
            manager.contribute_to_class(new_cls, mname)
            setattr(new_cls, mname, manager)

        if not opts.abstract:
            _model_registry[name] = new_cls
            for fk in opts.foreign_keys():
                _install_reverse_accessor(new_cls, fk)

        return new_cls


def _copy_field(field):
    import copy
    clone = copy.copy(field)
    clone._order = field._order
    return clone


def _install_reverse_accessor(model, fk):
    """Add ``target.<related_name>`` returning referencing rows.

    The accessor returns a queryset; when the instance was loaded via
    ``prefetch_related``, the queryset's result cache is primed from the
    prefetched rows so iterating or counting it issues no query.
    """
    related_name = fk.related_name or model.__name__.lower() + "_set"

    def accessor(self, _model=model, _fk=fk, _name=related_name):
        qs = _model.objects.using(self._state_db).filter(
            **{_fk.attname: self.pk})
        prefetched = self.__dict__.get("_prefetched_objects")
        if prefetched is not None and _name in prefetched:
            qs._result_cache = list(prefetched[_name])
            qs._sticky_cache = True
        return qs

    target = fk.to
    if isinstance(target, str):
        # Deferred: install once the target registers.
        _pending_reverse.setdefault(target, []).append(
            (related_name, accessor, model, fk))
    else:
        target._meta.related_objects[related_name] = (model, fk)
        setattr(target, related_name, property(accessor))


_pending_reverse = {}


def resolve_pending_relations():
    """Install reverse accessors whose targets registered late."""
    for target_name, accessors in list(_pending_reverse.items()):
        target = _model_registry.get(target_name)
        if target is None:
            continue
        for related_name, accessor, model, fk in accessors:
            target._meta.related_objects[related_name] = (model, fk)
            setattr(target, related_name, property(accessor))
        del _pending_reverse[target_name]


class Model(metaclass=ModelMeta):
    """Base class for all persistent objects.

    Instances track which role connection loaded them (``_state_db``) so
    related-object traversal and ``save()`` stay within the same role —
    an object the portal read cannot silently write through the daemon's
    credentials.
    """

    class Meta:
        abstract = True

    def __init__(self, **kwargs):
        self._state_db = kwargs.pop("_db", None)
        self._state_adding = True
        meta = self._meta
        for field in meta.fields:
            if field.attname in kwargs:
                setattr(self, field.attname, kwargs.pop(field.attname))
            elif isinstance(field, ForeignKey) and field.name in kwargs:
                setattr(self, field.name, kwargs.pop(field.name))
            elif field.has_default():
                setattr(self, field.attname, field.get_default())
            else:
                setattr(self, field.attname, None)
        if kwargs:
            raise TypeError(
                f"{type(self).__name__} got unexpected field(s): "
                f"{sorted(kwargs)}")

    # ------------------------------------------------------------------
    @property
    def pk(self):
        return getattr(self, self._meta.pk.attname)

    @pk.setter
    def pk(self, value):
        setattr(self, self._meta.pk.attname, value)

    @classmethod
    def _from_db_row(cls, row, db, fields=None):
        """Build an instance from a row dict.

        *fields* restricts hydration to a projection (``only()``/
        ``defer()``); the rest become deferred attributes that load
        lazily on first access.
        """
        obj = cls.__new__(cls)
        obj._state_db = db
        obj._state_adding = False
        loaded = fields if fields is not None else cls._meta.fields
        if fields is not None:
            deferred = ({f.attname for f in cls._meta.fields}
                        - {f.attname for f in loaded})
            if deferred:
                object.__setattr__(obj, "_deferred_fields", deferred)
        for field in loaded:
            raw = row.get(field.column)
            object.__setattr__(obj, field.attname, field.from_db(raw))
        return obj

    def __getattr__(self, name):
        # Only reached when normal lookup fails: deferred columns
        # (only()/defer() projections) load lazily, one column fetch.
        deferred = self.__dict__.get("_deferred_fields")
        if deferred and name in deferred:
            self._load_deferred(name)
            return self.__dict__[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    def _load_deferred(self, name):
        meta = self._meta
        field = meta.field_by_any_name(name)
        db = self._db_for_write()
        cur = db.execute(
            f'SELECT "{field.column}" FROM "{meta.table_name}" '
            f'WHERE "{meta.pk.column}" = ?',
            [meta.pk.to_db(self.pk)], operation="select",
            table=meta.table_name)
        row = cur.fetchone()
        value = field.from_db(row[0]) if row is not None else None
        self.__dict__["_deferred_fields"].discard(name)
        object.__setattr__(self, field.attname, value)

    def _db_for_write(self):
        db = self._state_db or self._meta.database
        if db is None:
            raise FieldError(
                f"No database bound for {type(self).__name__}")
        return db

    # ------------------------------------------------------------------
    def full_clean(self):
        """Validate every field; collect all errors before raising."""
        errors = {}
        for field in self._meta.fields:
            if field.primary_key and getattr(self, field.attname) is None:
                continue
            if isinstance(field, DateTimeField) and (field.auto_now or
                                                     field.auto_now_add):
                continue
            try:
                cleaned = field.clean(getattr(self, field.attname))
                if cleaned is not None:
                    setattr(self, field.attname, cleaned)
            except ValidationError as exc:
                if exc.error_dict:
                    for k, v in exc.error_dict.items():
                        errors.setdefault(k, []).extend(v)
                else:
                    errors.setdefault(field.name, []).extend(exc.messages)
        if errors:
            raise ValidationError(errors)

    def save(self, db=None, force_insert=False):
        """INSERT or UPDATE this instance after full validation.

        The strict-marshaling guarantee: nothing reaches the table without
        passing every field's ``clean()``.
        """
        if db is not None:
            self._state_db = db
        database = self._db_for_write()
        meta = self._meta
        self.full_clean()

        adding = force_insert or self.pk is None or self._state_adding
        columns, values = [], []
        for field in meta.fields:
            if isinstance(field, AutoField):
                continue
            if isinstance(field, DateTimeField):
                value = field.pre_save(self, adding)
            else:
                value = getattr(self, field.attname)
            columns.append(field.column)
            values.append(field.to_db(value))

        if adding:
            col_sql = ", ".join(f'"{c}"' for c in columns)
            marks = ", ".join("?" for _ in columns)
            if self.pk is not None:
                col_sql = f'"{meta.pk.column}", ' + col_sql if columns else \
                    f'"{meta.pk.column}"'
                marks = "?, " + marks if columns else "?"
                values = [meta.pk.to_db(self.pk)] + values
            sql = (f'INSERT INTO "{meta.table_name}" ({col_sql}) '
                   f'VALUES ({marks})')
            cur = database.execute(sql, values, operation="insert",
                                   table=meta.table_name)
            if self.pk is None:
                self.pk = cur.lastrowid
            self._state_adding = False
        else:
            sets = ", ".join(f'"{c}" = ?' for c in columns)
            sql = (f'UPDATE "{meta.table_name}" SET {sets} '
                   f'WHERE "{meta.pk.column}" = ?')
            database.execute(sql, values + [meta.pk.to_db(self.pk)],
                             operation="update", table=meta.table_name)
        from ..signals import post_save
        post_save.send(type(self), instance=self, created=adding,
                       db=database)
        return self

    def delete(self):
        database = self._db_for_write()
        meta = self._meta
        deleted_pk = self.pk
        database.execute(
            f'DELETE FROM "{meta.table_name}" WHERE "{meta.pk.column}" = ?',
            [meta.pk.to_db(self.pk)], operation="delete",
            table=meta.table_name)
        self.pk = None
        self._state_adding = True
        from ..signals import post_delete
        post_delete.send(type(self), instance=self, pk=deleted_pk,
                         db=database)

    def refresh_from_db(self):
        fresh = type(self).objects.using(self._db_for_write()).get(pk=self.pk)
        for field in self._meta.fields:
            setattr(self, field.attname, getattr(fresh, field.attname))
        self.__dict__.pop("_fk_cache", None)
        self.__dict__.pop("_prefetched_objects", None)
        self.__dict__.pop("_deferred_fields", None)
        self._state_adding = False
        return self

    # ------------------------------------------------------------------
    def __eq__(self, other):
        return (type(self) is type(other) and self.pk is not None
                and self.pk == other.pk)

    def __hash__(self):
        if self.pk is None:
            return object.__hash__(self)
        return hash((type(self).__name__, self.pk))

    def __repr__(self):
        return f"<{type(self).__name__}: pk={self.pk}>"
