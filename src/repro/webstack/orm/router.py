"""Primary/replica routing over role-scoped connections.

The data tier's answer to the "shared SQLite as PostgreSQL" speed
ceiling (ROADMAP "Database scale"; PAPERS.md "When Database Systems
Meet the Grid"): batch-oriented grid science traffic wants its read
path decoupled from its write path, with staleness made explicit
rather than accidental.

A :class:`ReplicaRouter` duck-types :class:`~.connection.Database` —
everything the ORM needs (``execute``, ``check_permission``,
``atomic``, ``count_queries``, ``ping``, the resilience hooks) — and
routes each statement:

- **writes** (and raw scripts, schema ops) always go to the *primary*
  connection, whose shared ``write_gate`` enforces the single-writer
  discipline across every role;
- **reads** round-robin across read-only *replica* reader connections,
  unless the calling thread is inside a transaction (its reads must
  see its own uncommitted writes), just wrote within the
  *read-your-writes window* (``pin_window_s`` on the injected clock —
  a session/request that wrote stays on the primary until the window
  lapses), or asked for :meth:`pinned` explicitly.

Staleness is bounded and *surfaced*, never silent: each replica read
reports how many write statements committed on the primary since that
reader last took a snapshot (``db_replica_lag_statements`` once wired
to obs), and every routing decision can be observed through
``on_route`` / traced as ``db.router.route`` events.

The resilience hooks (``deadline_hook``, ``fault_hook``,
``statement_observer``, ``on_execute``) and the slow-statement log are
fan-out properties: installing one on the router installs it on the
primary *and* every replica, so grants, deadline 504s, health signals,
and chaos injection fire identically on both routes.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager

from .connection import QueryCounter


class _MonotonicClock:
    """Default router clock when no deployment clock is injected."""

    @property
    def now(self):
        return time.monotonic()


class WriteSequence:
    """Shared monotonic count of write statements against one store.

    Both routers of a deployment (portal and daemon) bump the same
    sequence, so a portal replica's staleness honestly includes the
    daemon's writes — lag is a property of the *store*, not of one
    role's traffic.
    """

    def __init__(self):
        self.value = 0
        self._lock = threading.Lock()

    def bump(self):
        with self._lock:
            self.value += 1
            return self.value


#: Attributes that fan out to the primary and every replica when set on
#: the router (and read back from the primary).
_FANOUT_ATTRS = ("deadline_hook", "fault_hook", "statement_observer",
                 "on_execute", "slow_statement_s", "on_slow_statement")


class ReplicaRouter:
    """Route ORM statements across one primary and N replica readers."""

    def __init__(self, primary, replicas=(), *, clock=None,
                 pin_window_s=5.0, sequence=None):
        self.primary = primary
        self.replicas = list(replicas)
        self.clock = clock if clock is not None else _MonotonicClock()
        self.pin_window_s = float(pin_window_s)
        self._local = threading.local()
        self._rr = itertools.count()
        self._seq_lock = threading.Lock()
        #: Monotonic count of write statements committed against the
        #: store (shared with sibling routers); each replica remembers
        #: the value it last observed, and the difference is that
        #: reader's staleness in statements.
        self.sequence = sequence if sequence is not None \
            else WriteSequence()
        self._replica_seen = [0] * len(self.replicas)
        #: Router-level routing tally, independent of obs:
        #: ``{"primary": n, "replica": n}``.
        self.routed_statements = {"primary": 0, "replica": 0}
        #: Optional ``(operation, table, route, replica_lag)`` callback;
        #: the deployment wires per-role route counters and the lag
        #: gauge here without the ORM importing obs.
        self.on_route = None
        #: When True, the wired ``on_route`` may also emit
        #: ``db.router.route`` events (off by default: one event per
        #: statement is soak-log-sized).
        self.trace_routes = False
        #: Router-level statement log: ``(operation, table, route)``
        #: triples while ``log_statements`` is True.
        self.log_statements = False
        self.statement_log = []

    # -- Database-compatible surface -----------------------------------
    @property
    def role(self):
        return self.primary.role

    @property
    def path(self):
        return self.primary.path

    @property
    def roles(self):
        return self.primary.roles

    @property
    def journal_mode(self):
        return self.primary.journal_mode

    def _all_dbs(self):
        return [self.primary, *self.replicas]

    def check_permission(self, operation, table):
        self.primary.check_permission(operation, table)

    # Fan-out hook properties: setting one arms every route.
    def __getattr__(self, name):
        if name in _FANOUT_ATTRS:
            return getattr(self.__dict__["primary"], name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    def __setattr__(self, name, value):
        if name in _FANOUT_ATTRS:
            for db in self._all_dbs():
                setattr(db, name, value)
            return
        object.__setattr__(self, name, value)

    # Aggregated counters: QueryCounter works unchanged against these,
    # so round-trip budgets stay accurate when statements split across
    # routes.
    @property
    def queries_executed(self):
        return sum(db.queries_executed for db in self._all_dbs())

    @property
    def queries_by_operation(self):
        merged = {}
        for db in self._all_dbs():
            for op, n in db.queries_by_operation.items():
                merged[op] = merged.get(op, 0) + n
        return merged

    def count_queries(self):
        return QueryCounter(self)

    # -- routing -------------------------------------------------------
    def _pinned(self):
        if getattr(self._local, "forced_primary", 0) > 0:
            return True
        last_write = getattr(self._local, "last_write_at", None)
        return (last_write is not None
                and self.clock.now - last_write < self.pin_window_s)

    def _route(self, operation):
        """Pick ``(db, route_name, replica_lag)`` for one statement."""
        if operation != "select" or not self.replicas:
            return self.primary, "primary", 0
        if getattr(self._local, "txn_depth", 0) > 0:
            # In-transaction reads must see the transaction's own
            # uncommitted writes: primary, unconditionally.
            return self.primary, "primary", 0
        if self._pinned():
            # Read-your-writes: this thread wrote inside the window.
            return self.primary, "primary", 0
        index = next(self._rr) % len(self.replicas)
        with self._seq_lock:
            seq = self.sequence.value
            lag = seq - self._replica_seen[index]
            # The read about to run takes a fresh snapshot: everything
            # committed so far becomes visible to this reader.
            self._replica_seen[index] = seq
        return self.replicas[index], "replica", lag

    @property
    def write_seq(self):
        return self.sequence.value

    def _note_write(self):
        self.sequence.bump()
        self._local.last_write_at = self.clock.now

    def execute(self, sql, params=(), *, operation, table):
        db, route, lag = self._route(operation)
        cur = db.execute(sql, params, operation=operation, table=table)
        if operation != "select":
            self._note_write()
        self.routed_statements[route] += 1
        if self.log_statements:
            self.statement_log.append((operation, table, route))
        if self.on_route is not None:
            self.on_route(operation, table, route, lag)
        return cur

    def executescript(self, script):
        result = self.primary.executescript(script)
        self._note_write()
        self.routed_statements["primary"] += 1
        if self.on_route is not None:
            self.on_route("script", "<script>", "primary", 0)
        return result

    def atomic(self):
        return _RoutedAtomic(self)

    @contextmanager
    def pinned(self):
        """Force this thread's statements to the primary for a scope —
        for callers needing strict read-after-write beyond the window
        (e.g. journal write-ahead verification)."""
        self._local.forced_primary = getattr(
            self._local, "forced_primary", 0) + 1
        try:
            yield self
        finally:
            self._local.forced_primary -= 1

    # -- probes and lifecycle ------------------------------------------
    def ping(self):
        """Probe every route; raises on the first unhealthy one."""
        self.primary.ping()
        for replica in self.replicas:
            replica.ping()

    def ping_routes(self):
        """Probe primary and replica paths independently.

        Returns ``{"primary": exc_or_None, "replica": exc_or_None}``
        (the replica entry is the first failing reader's exception, or
        None when every reader — or no reader — answered).
        """
        results = {}
        try:
            self.primary.ping()
            results["primary"] = None
        except Exception as exc:  # noqa: BLE001 - probe evidence
            results["primary"] = exc
        replica_exc = None
        for replica in self.replicas:
            try:
                replica.ping()
            except Exception as exc:  # noqa: BLE001 - probe evidence
                replica_exc = exc
                break
        results["replica"] = replica_exc
        return results

    def table_names(self):
        return self.primary.table_names()

    def statement_cache_stats(self):
        """Aggregated prepared-statement reuse across every route."""
        totals = {"hits": 0, "misses": 0, "evictions": 0}
        for db in self._all_dbs():
            stats = db.statements.stats()
            for key in totals:
                totals[key] += stats[key]
        noted = totals["hits"] + totals["misses"]
        totals["hit_rate"] = totals["hits"] / noted if noted else 0.0
        return totals

    def close(self):
        for db in self._all_dbs():
            db.close()

    def __repr__(self):  # pragma: no cover
        return (f"<ReplicaRouter role={self.role!r} "
                f"replicas={len(self.replicas)} "
                f"writes={self.write_seq}>")


class _RoutedAtomic:
    """Transaction scope on the router: enters the primary's atomic
    scope (which takes the shared write gate) and marks the calling
    thread in-transaction so its reads route to the primary."""

    def __init__(self, router):
        self.router = router
        self._inner = router.primary.atomic()

    def __enter__(self):
        local = self.router._local
        local.txn_depth = getattr(local, "txn_depth", 0) + 1
        self._inner.__enter__()
        return self.router

    def __exit__(self, exc_type, exc, tb):
        try:
            return self._inner.__exit__(exc_type, exc, tb)
        finally:
            self.router._local.txn_depth -= 1
            # A transaction presumably wrote: pin the thread's
            # follow-up reads to the primary for the window.
            self.router._note_write()
