"""Lazy QuerySets, Q expressions, and the SQL compiler.

The subset of the Django query API implemented here is exactly the subset
the AMP gateway exercises: chained ``filter``/``exclude`` with field
lookups, ``get``/``first``/``count``/``exists``, ``order_by``, slicing,
``values``/``values_list``, bulk ``update``/``delete``, and ``Q`` objects
for OR'd conditions (the daemon's "jobs in any active state" poll).

QuerySets are lazy and immutable: every refinement returns a clone, and
SQL executes only on iteration or a terminal method.
"""

from __future__ import annotations

from .exceptions import FieldError

#: lookup name -> SQL template fragment (``{col}`` substituted, one param).
_LOOKUPS = {
    "exact": '"{col}" = ?',
    "iexact": 'LOWER("{col}") = LOWER(?)',
    "ne": '"{col}" != ?',
    "gt": '"{col}" > ?',
    "gte": '"{col}" >= ?',
    "lt": '"{col}" < ?',
    "lte": '"{col}" <= ?',
    "contains": '"{col}" LIKE ? ESCAPE \'\\\'',
    "icontains": 'LOWER("{col}") LIKE LOWER(?) ESCAPE \'\\\'',
    "startswith": '"{col}" LIKE ? ESCAPE \'\\\'',
    "istartswith": 'LOWER("{col}") LIKE LOWER(?) ESCAPE \'\\\'',
    "endswith": '"{col}" LIKE ? ESCAPE \'\\\'',
}


def _like_escape(value):
    return (str(value).replace("\\", "\\\\")
            .replace("%", r"\%").replace("_", r"\_"))


class Q:
    """A composable filter condition.

    ``Q(state="RUNNING") | Q(state="QUEUED")`` compiles to an OR group;
    ``~Q(...)`` negates.  Leaves hold keyword lookups in Django syntax
    (``field``, ``field__lookup``).
    """

    AND = "AND"
    OR = "OR"

    def __init__(self, **lookups):
        self.children = [("leaf", lookups)] if lookups else []
        self.connector = self.AND
        self.negated = False

    def _combine(self, other, connector):
        if not isinstance(other, Q):
            raise TypeError("Q objects can only combine with Q objects")
        combined = Q()
        combined.connector = connector
        for q in (self, other):
            if not q.children:
                continue
            combined.children.append(("node", q))
        return combined

    def __and__(self, other):
        return self._combine(other, self.AND)

    def __or__(self, other):
        return self._combine(other, self.OR)

    def __invert__(self):
        clone = Q()
        clone.children = list(self.children)
        clone.connector = self.connector
        clone.negated = not self.negated
        return clone

    def is_empty(self):
        return not self.children


class QueryCompiler:
    """Compiles Q trees and queryset state into SQL + parameters."""

    def __init__(self, model):
        self.model = model
        self.meta = model._meta

    # -- condition compilation -----------------------------------------
    def resolve_column(self, name):
        """Map a lookup path like ``name`` or ``name__lookup`` to a column."""
        parts = name.split("__")
        lookup = "exact"
        if len(parts) > 1 and parts[-1] in _LOOKUPS or (
                len(parts) > 1 and parts[-1] in ("in", "isnull", "range")):
            lookup = parts.pop()
        field_name = "__".join(parts)
        if field_name == "pk":
            return self.meta.pk.column, self.meta.pk, lookup
        field = self.meta.field_by_any_name(field_name)
        if field is None:
            raise FieldError(
                f"Unknown field {field_name!r} for model "
                f"{self.model.__name__}; choices are "
                f"{sorted(f.name for f in self.meta.fields)}")
        return field.column, field, lookup

    def compile_lookup(self, key, value):
        col, field, lookup = self.resolve_column(key)
        if lookup == "isnull":
            return (f'"{col}" IS NULL' if value else f'"{col}" IS NOT NULL'), []
        if lookup == "in":
            values = [field.to_db(field.to_python(v)) for v in value]
            if not values:
                return "0 = 1", []  # empty IN matches nothing
            marks = ", ".join("?" for _ in values)
            return f'"{col}" IN ({marks})', values
        if lookup == "range":
            lo, hi = value
            return (f'"{col}" BETWEEN ? AND ?',
                    [field.to_db(field.to_python(lo)),
                     field.to_db(field.to_python(hi))])
        template = _LOOKUPS.get(lookup)
        if template is None:
            raise FieldError(f"Unsupported lookup {lookup!r}")
        if lookup in ("contains", "icontains"):
            param = f"%{_like_escape(value)}%"
        elif lookup in ("startswith", "istartswith"):
            param = f"{_like_escape(value)}%"
        elif lookup == "endswith":
            param = f"%{_like_escape(value)}"
        else:
            param = field.to_db(field.to_python(value))
        return template.format(col=col), [param]

    def compile_q(self, q):
        """Compile a Q tree; returns (sql, params)."""
        fragments, params = [], []
        for kind, payload in q.children:
            if kind == "leaf":
                sub = []
                for key, value in payload.items():
                    sql, p = self.compile_lookup(key, value)
                    sub.append(sql)
                    params.extend(p)
                if sub:
                    fragments.append("(" + " AND ".join(sub) + ")")
            else:
                sql, p = self.compile_q(payload)
                if sql:
                    fragments.append("(" + sql + ")")
                    params.extend(p)
        if not fragments:
            return "", params
        sql = f" {q.connector} ".join(fragments)
        if q.negated:
            sql = f"NOT ({sql})"
        return sql, params

    def compile_where(self, conditions):
        """Compile a list of Q objects AND'ed together."""
        fragments, params = [], []
        for q in conditions:
            sql, p = self.compile_q(q)
            if sql:
                fragments.append("(" + sql + ")")
                params.extend(p)
        if not fragments:
            return "", []
        return " WHERE " + " AND ".join(fragments), params

    def compile_order(self, order_by):
        if not order_by:
            order_by = self.meta.ordering
        if not order_by:
            return ""
        terms = []
        for name in order_by:
            desc = name.startswith("-")
            col, _, _ = self.resolve_column(name.lstrip("-"))
            terms.append(f'"{col}" DESC' if desc else f'"{col}" ASC')
        return " ORDER BY " + ", ".join(terms)


class QuerySet:
    """A lazy, chainable view over one model's table."""

    def __init__(self, model, db=None):
        self.model = model
        self._db = db
        self._conditions = []      # list of Q (AND'ed)
        self._order_by = []
        self._limit = None
        self._offset = None
        self._result_cache = None

    # ------------------------------------------------------------------
    @property
    def db(self):
        db = self._db or self.model._meta.database
        if db is None:
            raise FieldError(
                f"No database bound for {self.model.__name__}; call "
                "schema.bind(models, db) or pass .using(db)")
        return db

    def _clone(self):
        clone = QuerySet(self.model, self._db)
        clone._conditions = list(self._conditions)
        clone._order_by = list(self._order_by)
        clone._limit = self._limit
        clone._offset = self._offset
        return clone

    def using(self, db):
        clone = self._clone()
        clone._db = db
        return clone

    # -- refinement ------------------------------------------------------
    def filter(self, *qs, **lookups):
        clone = self._clone()
        for q in qs:
            if not isinstance(q, Q):
                raise TypeError("positional arguments must be Q objects")
            if not q.is_empty():
                clone._conditions.append(q)
        if lookups:
            clone._conditions.append(Q(**lookups))
        return clone

    def exclude(self, *qs, **lookups):
        combined = Q()
        combined.children = [("node", q) for q in qs]
        if lookups:
            combined.children.append(("leaf", lookups))
        if not combined.children:
            return self._clone()
        clone = self._clone()
        clone._conditions.append(~combined)
        return clone

    def order_by(self, *names):
        clone = self._clone()
        clone._order_by = list(names)
        return clone

    def all(self):
        return self._clone()

    def none(self):
        clone = self._clone()
        clone._conditions.append(Q(pk__in=[]))
        return clone

    # -- execution ---------------------------------------------------------
    def _select_sql(self, columns="*"):
        compiler = QueryCompiler(self.model)
        where, params = compiler.compile_where(self._conditions)
        sql = f'SELECT {columns} FROM "{self.model._meta.table_name}"' + where
        sql += compiler.compile_order(self._order_by)
        if self._limit is not None or self._offset is not None:
            sql += f" LIMIT {self._limit if self._limit is not None else -1}"
            if self._offset:
                sql += f" OFFSET {self._offset}"
        return sql, params

    def _fetch(self):
        if self._result_cache is None:
            sql, params = self._select_sql()
            cur = self.db.execute(sql, params, operation="select",
                                  table=self.model._meta.table_name)
            self._result_cache = [
                self.model._from_db_row(dict(row), self.db)
                for row in cur.fetchall()]
        return self._result_cache

    def __iter__(self):
        return iter(self._fetch())

    def __len__(self):
        return len(self._fetch())

    def __bool__(self):
        return bool(self._fetch())

    def __getitem__(self, item):
        if isinstance(item, slice):
            if (item.start or 0) < 0 or (item.stop is not None and item.stop < 0):
                raise ValueError("Negative slicing is not supported")
            clone = self._clone()
            clone._offset = (self._offset or 0) + (item.start or 0)
            if item.stop is not None:
                clone._limit = item.stop - (item.start or 0)
            return clone
        if item < 0:
            raise ValueError("Negative indexing is not supported")
        return self._fetch()[item]

    # -- terminal methods --------------------------------------------------
    def get(self, *qs, **lookups):
        results = list(self.filter(*qs, **lookups)[:2])
        if not results:
            raise self.model.DoesNotExist(
                f"{self.model.__name__} matching query does not exist "
                f"({lookups!r})")
        if len(results) > 1:
            raise self.model.MultipleObjectsReturned(
                f"get() returned more than one {self.model.__name__}")
        return results[0]

    def first(self):
        results = list(self[:1])
        return results[0] if results else None

    def last(self):
        order = self._order_by or self.model._meta.ordering or ["pk"]
        flipped = [n[1:] if n.startswith("-") else "-" + n for n in order]
        return self.order_by(*flipped).first()

    def count(self):
        compiler = QueryCompiler(self.model)
        where, params = compiler.compile_where(self._conditions)
        sql = (f'SELECT COUNT(*) FROM "{self.model._meta.table_name}"'
               + where)
        cur = self.db.execute(sql, params, operation="select",
                              table=self.model._meta.table_name)
        return cur.fetchone()[0]

    def exists(self):
        return bool(list(self[:1]))

    def delete(self):
        """Delete matching rows; returns number deleted."""
        compiler = QueryCompiler(self.model)
        where, params = compiler.compile_where(self._conditions)
        sql = f'DELETE FROM "{self.model._meta.table_name}"' + where
        cur = self.db.execute(sql, params, operation="delete",
                              table=self.model._meta.table_name)
        return cur.rowcount

    def update(self, **values):
        """Bulk UPDATE of matching rows; returns number updated.

        Values pass through the same field ``clean()`` pipeline as
        ``save()`` — the strict-typing guarantee holds for bulk writes too.
        """
        if not values:
            return 0
        meta = self.model._meta
        sets, params = [], []
        for name, value in values.items():
            field = meta.field_by_any_name(name)
            if field is None:
                raise FieldError(f"Unknown field {name!r} in update()")
            cleaned = field.clean(value)
            sets.append(f'"{field.column}" = ?')
            params.append(field.to_db(cleaned))
        compiler = QueryCompiler(self.model)
        where, wparams = compiler.compile_where(self._conditions)
        sql = (f'UPDATE "{meta.table_name}" SET ' + ", ".join(sets) + where)
        cur = self.db.execute(sql, params + wparams, operation="update",
                              table=meta.table_name)
        return cur.rowcount

    def values(self, *names):
        """Return a list of dicts restricted to *names* (or all fields)."""
        meta = self.model._meta
        if not names:
            names = [f.attname for f in meta.fields]
        rows = []
        for obj in self._fetch():
            rows.append({n: getattr(obj, n if n != "pk" else meta.pk.attname)
                         for n in names})
        return rows

    def values_list(self, *names, flat=False):
        rows = self.values(*names)
        if flat:
            if len(names) != 1:
                raise FieldError("flat=True requires exactly one field")
            return [r[names[0]] for r in rows]
        return [tuple(r[n] for n in names) for r in rows]

    def in_bulk(self, ids):
        objs = self.filter(pk__in=list(ids))
        return {obj.pk: obj for obj in objs}

    def create(self, **kwargs):
        """Create and save an instance through this queryset's database."""
        obj = self.model(**kwargs)
        obj.save(db=self.db)
        return obj

    def get_or_create(self, defaults=None, **lookups):
        try:
            return self.get(**lookups), False
        except self.model.DoesNotExist:
            params = dict(lookups)
            params.update(defaults or {})
            return self.create(**params), True

    def update_or_create(self, defaults=None, **lookups):
        """Update the matching row with *defaults*, or create it.

        Returns ``(object, created)``.
        """
        defaults = defaults or {}
        try:
            obj = self.get(**lookups)
            for key, value in defaults.items():
                setattr(obj, key, value)
            obj.save(db=self.db)
            return obj, False
        except self.model.DoesNotExist:
            params = dict(lookups)
            params.update(defaults)
            return self.create(**params), True

    def distinct_values(self, field_name):
        """Sorted distinct values of one column."""
        from .aggregates import run_values_count
        return sorted(run_values_count(self, field_name),
                      key=lambda v: (v is None, v))

    def aggregate(self, **named_aggregates):
        """Run aggregates (Count/Sum/Avg/Min/Max) over this queryset."""
        from .aggregates import run_aggregate
        return run_aggregate(self, named_aggregates)

    def values_count(self, field_name):
        """GROUP BY *field_name*; returns ``{value: count}``."""
        from .aggregates import run_values_count
        return run_values_count(self, field_name)

    def __repr__(self):  # pragma: no cover
        preview = list(self[:4])
        suffix = ", ..." if len(preview) > 3 else ""
        inner = ", ".join(repr(o) for o in preview[:3])
        return f"<QuerySet [{inner}{suffix}]>"
