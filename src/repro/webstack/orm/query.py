"""Lazy QuerySets, Q expressions, and the SQL compiler.

The subset of the Django query API implemented here is exactly the subset
the AMP gateway exercises: chained ``filter``/``exclude`` with field
lookups, ``get``/``first``/``count``/``exists``, ``order_by``, slicing,
``values``/``values_list``, bulk ``update``/``delete``, and ``Q`` objects
for OR'd conditions (the daemon's "jobs in any active state" poll).

QuerySets are lazy and immutable: every refinement returns a clone, and
SQL executes only on iteration or a terminal method.

Batch-oriented access (the set-oriented idiom grid gateways need — see
SDSS/SkyServer, "When Database Systems Meet the Grid"):

- ``select_related("fk__nested_fk")`` — LEFT JOINs eager-load forward
  foreign keys in the same round trip as the base rows;
- ``prefetch_related(name)`` — one batched ``IN``-query per relation
  loads forward FKs or reverse FK sets for *every* fetched row;
- ``only()``/``defer()`` — column projection (unloaded columns load
  lazily on first access);
- ``bulk_update(objs, fields)`` — one CASE-WHEN UPDATE per batch instead
  of one UPDATE per object.
"""

from __future__ import annotations

import threading

from .exceptions import FieldError

#: lookup name -> SQL template fragment (``{col}`` is the quoted —
#: possibly table-qualified — column reference; one param).
_LOOKUPS = {
    "exact": '{col} = ?',
    "iexact": 'LOWER({col}) = LOWER(?)',
    "ne": '{col} != ?',
    "gt": '{col} > ?',
    "gte": '{col} >= ?',
    "lt": '{col} < ?',
    "lte": '{col} <= ?',
    "contains": '{col} LIKE ? ESCAPE \'\\\'',
    "icontains": 'LOWER({col}) LIKE LOWER(?) ESCAPE \'\\\'',
    "startswith": '{col} LIKE ? ESCAPE \'\\\'',
    "istartswith": 'LOWER({col}) LIKE LOWER(?) ESCAPE \'\\\'',
    "endswith": '{col} LIKE ? ESCAPE \'\\\'',
}


def _like_escape(value):
    return (str(value).replace("\\", "\\\\")
            .replace("%", r"\%").replace("_", r"\_"))


# ----------------------------------------------------------------------
# Compiled-query cache
# ----------------------------------------------------------------------
#
# SQL string-building is pure: the text depends only on the queryset's
# *shape* — model, lookup keys (and, for variadic lookups like ``in``,
# the parameter count), ordering, projection, joins, limit/offset —
# never on the bound values.  Hot paths (daemon poll sweeps, API
# pagination, portal stats) issue the same shapes over and over, so the
# compiler memoizes per shape: a hit returns the cached SQL plus a list
# of *binders* (per-parameter converter functions recorded during the
# one real compile) applied to the fresh values.  Because the SQL text
# is then byte-identical call after call, sqlite3's per-connection
# prepared-statement cache reuses the prepared statement too (tracked
# by the connection's ``StatementCache``).

_VARIADIC_LOOKUPS = ("in", "isnull", "range", "mod")
_ALL_LOOKUPS = frozenset(_LOOKUPS) | frozenset(_VARIADIC_LOOKUPS)


def _lookup_of(key):
    """The lookup suffix of a filter key (mirrors ``resolve_column``)."""
    parts = key.split("__")
    if len(parts) > 1 and parts[-1] in _ALL_LOOKUPS:
        return parts[-1]
    return "exact"


def _shape_q(q, values):
    """One walk of a Q tree: appends raw parameter values to *values*
    (in exactly the order ``compile_q`` emits parameters) and returns a
    hashable shape tuple.  Must stay step-for-step aligned with the
    binder recording in ``QueryCompiler.compile_lookup``."""
    children = []
    for kind, payload in q.children:
        if kind == "leaf":
            leaf = []
            for key, value in payload.items():
                lookup = _lookup_of(key)
                if lookup == "in":
                    if not isinstance(value, (list, tuple)):
                        # Materialize sets/generators once so the shape
                        # walk and a later compile see the same
                        # elements in the same order.
                        value = list(value)
                        payload[key] = value
                    leaf.append((key, "in", len(value)))
                    values.extend(value)
                elif lookup == "isnull":
                    leaf.append((key, "isnull", bool(value)))
                elif lookup == "range":
                    lo, hi = value
                    leaf.append((key, "range"))
                    values.append(lo)
                    values.append(hi)
                elif lookup == "mod":
                    divisor, remainder = value
                    divisor = int(divisor)
                    if divisor <= 0:
                        # Same guard compile_lookup enforces; with it
                        # here too, a cache hit can never skip it.
                        raise FieldError(
                            "mod lookup needs a positive divisor")
                    if isinstance(remainder,
                                  (list, tuple, set, frozenset)):
                        remainders = sorted({int(r) for r in remainder})
                        leaf.append((key, "mod", len(remainders)))
                        if remainders:
                            # An empty residue set compiles to the
                            # constant "0 = 1" with no parameters.
                            values.append(divisor)
                            values.extend(remainders)
                    else:
                        leaf.append((key, "mod", None))
                        values.append(divisor)
                        values.append(int(remainder))
                else:
                    leaf.append((key, lookup))
                    values.append(value)
            children.append(("leaf", tuple(leaf)))
        else:
            children.append(("node", _shape_q(payload, values)))
    return (q.connector, q.negated, tuple(children))


def _shape_conditions(conditions):
    """Shape + flat raw values for a conditions list (see _shape_q)."""
    values = []
    shape = tuple(_shape_q(q, values) for q in conditions)
    return shape, values


class CompiledQueryCache:
    """Bounded, thread-safe LRU of compiled queryset shapes.

    One global instance (``compiled_cache``) serves every model and
    every connection: compiled SQL is independent of which role runs
    it.  Entries are keyed by the model *class object* (so a freshly
    defined test model never collides with a prior one) plus the full
    structural shape.  ``stats()`` exposes hits/misses/compiles —
    ``bench_db_router.py`` pins the poll-sweep hit rate against it.
    """

    def __init__(self, capacity=512):
        self.capacity = int(capacity)
        self.enabled = True
        self._entries = {}
        self._order = []            # LRU order, oldest first
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.compiles = 0           # full SQL builds (cache on or off)
        self.evictions = 0
        self.uncacheable = 0

    def get(self, key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            # Cheap LRU touch: move to the end lazily.
            try:
                self._order.remove(key)
            except ValueError:  # pragma: no cover - defensive
                pass
            self._order.append(key)
            return entry

    def put(self, key, entry):
        with self._lock:
            if key not in self._entries:
                self._order.append(key)
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                oldest = self._order.pop(0)
                self._entries.pop(oldest, None)
                self.evictions += 1

    def clear(self):
        with self._lock:
            self._entries.clear()
            self._order.clear()
            self.hits = self.misses = self.compiles = 0
            self.evictions = self.uncacheable = 0

    def configure(self, *, capacity=None, enabled=None):
        with self._lock:
            if capacity is not None:
                self.capacity = int(capacity)
            if enabled is not None:
                self.enabled = bool(enabled)

    def stats(self):
        total = self.hits + self.misses
        return {"hits": self.hits, "misses": self.misses,
                "compiles": self.compiles, "evictions": self.evictions,
                "uncacheable": self.uncacheable,
                "size": len(self._entries),
                "hit_rate": self.hits / total if total else 0.0}

    def __len__(self):
        return len(self._entries)


#: The process-wide compiled-query cache.
compiled_cache = CompiledQueryCache()


class Q:
    """A composable filter condition.

    ``Q(state="RUNNING") | Q(state="QUEUED")`` compiles to an OR group;
    ``~Q(...)`` negates.  Leaves hold keyword lookups in Django syntax
    (``field``, ``field__lookup``).
    """

    AND = "AND"
    OR = "OR"

    def __init__(self, **lookups):
        self.children = [("leaf", lookups)] if lookups else []
        self.connector = self.AND
        self.negated = False

    def _combine(self, other, connector):
        if not isinstance(other, Q):
            raise TypeError("Q objects can only combine with Q objects")
        combined = Q()
        combined.connector = connector
        for q in (self, other):
            if not q.children:
                continue
            combined.children.append(("node", q))
        return combined

    def __and__(self, other):
        return self._combine(other, self.AND)

    def __or__(self, other):
        return self._combine(other, self.OR)

    def __invert__(self):
        clone = Q()
        clone.children = list(self.children)
        clone.connector = self.connector
        clone.negated = not self.negated
        return clone

    def is_empty(self):
        return not self.children


class QueryCompiler:
    """Compiles Q trees and queryset state into SQL + parameters.

    When *base_alias* is set (a JOIN query), every base-table column
    reference is qualified with it so joined tables sharing column names
    (every table has ``id``) stay unambiguous.
    """

    def __init__(self, model, base_alias=None):
        self.model = model
        self.meta = model._meta
        self.base_alias = base_alias

    def qualify(self, column):
        """Return the quoted (and qualified, under a JOIN) column ref."""
        if self.base_alias:
            return f'"{self.base_alias}"."{column}"'
        return f'"{column}"'

    # -- condition compilation -----------------------------------------
    def resolve_column(self, name):
        """Map a lookup path like ``name`` or ``name__lookup`` to a column."""
        parts = name.split("__")
        lookup = "exact"
        if len(parts) > 1 and parts[-1] in _LOOKUPS or (
                len(parts) > 1
                and parts[-1] in ("in", "isnull", "range", "mod")):
            lookup = parts.pop()
        field_name = "__".join(parts)
        if field_name == "pk":
            return self.meta.pk.column, self.meta.pk, lookup
        field = self.meta.field_by_any_name(field_name)
        if field is None:
            raise FieldError(
                f"Unknown field {field_name!r} for model "
                f"{self.model.__name__}; choices are "
                f"{sorted(f.name for f in self.meta.fields)}")
        return field.column, field, lookup

    @staticmethod
    def _field_binder(field):
        """Per-parameter converter for a cached compile: replays the
        marshaling ``compile_lookup`` applied to the original value."""
        return lambda v: field.to_db(field.to_python(v))

    def compile_lookup(self, key, value, binders=None):
        """Compile one lookup; returns (sql, params).

        When *binders* is a list, one converter callable is appended
        per emitted parameter, in parameter order — the compiled-query
        cache applies them to the raw values collected by ``_shape_q``
        so a cache hit rebuilds params without rebuilding SQL.
        """
        col, field, lookup = self.resolve_column(key)
        ref = self.qualify(col)
        if lookup == "isnull":
            return (f'{ref} IS NULL' if value else f'{ref} IS NOT NULL'), []
        if lookup == "in":
            values = [field.to_db(field.to_python(v)) for v in value]
            if not values:
                return "0 = 1", []  # empty IN matches nothing
            if binders is not None:
                binders.extend([self._field_binder(field)] * len(values))
            marks = ", ".join("?" for _ in values)
            return f'{ref} IN ({marks})', values
        if lookup == "range":
            lo, hi = value
            if binders is not None:
                binders.extend([self._field_binder(field)] * 2)
            return (f'{ref} BETWEEN ? AND ?',
                    [field.to_db(field.to_python(lo)),
                     field.to_db(field.to_python(hi))])
        if lookup == "mod":
            # ``field__mod=(divisor, remainder)`` or
            # ``field__mod=(divisor, [r0, r1, ...])`` — residue-class
            # membership, the primitive behind sliced (partitioned)
            # sweeps over integer keys.
            divisor, remainder = value
            divisor = int(divisor)
            if divisor <= 0:
                raise FieldError("mod lookup needs a positive divisor")
            if isinstance(remainder, (list, tuple, set, frozenset)):
                remainders = sorted({int(r) for r in remainder})
                if not remainders:
                    return "0 = 1", []  # empty residue set matches nothing
                if binders is not None:
                    binders.extend([int] * (1 + len(remainders)))
                marks = ", ".join("?" for _ in remainders)
                return (f'({ref} % ?) IN ({marks})',
                        [divisor, *remainders])
            if binders is not None:
                binders.extend([int, int])
            return f'({ref} % ?) = ?', [divisor, int(remainder)]
        template = _LOOKUPS.get(lookup)
        if template is None:
            raise FieldError(f"Unsupported lookup {lookup!r}")
        if lookup in ("contains", "icontains"):
            param = f"%{_like_escape(value)}%"
            binder = lambda v: f"%{_like_escape(v)}%"  # noqa: E731
        elif lookup in ("startswith", "istartswith"):
            param = f"{_like_escape(value)}%"
            binder = lambda v: f"{_like_escape(v)}%"  # noqa: E731
        elif lookup == "endswith":
            param = f"%{_like_escape(value)}"
            binder = lambda v: f"%{_like_escape(v)}"  # noqa: E731
        else:
            param = field.to_db(field.to_python(value))
            binder = self._field_binder(field)
        if binders is not None:
            binders.append(binder)
        return template.format(col=ref), [param]

    def compile_q(self, q, binders=None):
        """Compile a Q tree; returns (sql, params)."""
        fragments, params = [], []
        for kind, payload in q.children:
            if kind == "leaf":
                sub = []
                for key, value in payload.items():
                    sql, p = self.compile_lookup(key, value,
                                                 binders=binders)
                    sub.append(sql)
                    params.extend(p)
                if sub:
                    fragments.append("(" + " AND ".join(sub) + ")")
            else:
                sql, p = self.compile_q(payload, binders=binders)
                if sql:
                    fragments.append("(" + sql + ")")
                    params.extend(p)
        if not fragments:
            return "", params
        sql = f" {q.connector} ".join(fragments)
        if q.negated:
            sql = f"NOT ({sql})"
        return sql, params

    def compile_where(self, conditions, binders=None):
        """Compile a list of Q objects AND'ed together."""
        fragments, params = [], []
        for q in conditions:
            sql, p = self.compile_q(q, binders=binders)
            if sql:
                fragments.append("(" + sql + ")")
                params.extend(p)
        if not fragments:
            return "", []
        return " WHERE " + " AND ".join(fragments), params

    def compile_order(self, order_by):
        if not order_by:
            order_by = self.meta.ordering
        if not order_by:
            return ""
        terms = []
        for name in order_by:
            desc = name.startswith("-")
            col, _, _ = self.resolve_column(name.lstrip("-"))
            ref = self.qualify(col)
            terms.append(f'{ref} DESC' if desc else f'{ref} ASC')
        return " ORDER BY " + ", ".join(terms)


class QuerySet:
    """A lazy, chainable view over one model's table."""

    #: Set on querysets returned by reverse-relation accessors whose
    #: result cache was primed by ``prefetch_related`` — their ``all()``
    #: serves the cache (the related-manager contract) instead of
    #: cloning into a fresh round trip.
    _sticky_cache = False

    def __init__(self, model, db=None):
        self.model = model
        self._db = db
        self._conditions = []      # list of Q (AND'ed)
        self._order_by = []
        self._limit = None
        self._offset = None
        self._select_related = ()   # FK paths to JOIN-load
        self._prefetch_related = () # relation names to batch-load
        self._only = None           # field-name allowlist (None = all)
        self._defer = frozenset()   # field-name denylist
        self._result_cache = None

    # ------------------------------------------------------------------
    @property
    def db(self):
        db = self._db or self.model._meta.database
        if db is None:
            raise FieldError(
                f"No database bound for {self.model.__name__}; call "
                "schema.bind(models, db) or pass .using(db)")
        return db

    def _clone(self):
        clone = QuerySet(self.model, self._db)
        clone._conditions = list(self._conditions)
        clone._order_by = list(self._order_by)
        clone._limit = self._limit
        clone._offset = self._offset
        clone._select_related = self._select_related
        clone._prefetch_related = self._prefetch_related
        clone._only = None if self._only is None else set(self._only)
        clone._defer = self._defer
        return clone

    def using(self, db):
        clone = self._clone()
        clone._db = db
        return clone

    # -- refinement ------------------------------------------------------
    def filter(self, *qs, **lookups):
        clone = self._clone()
        for q in qs:
            if not isinstance(q, Q):
                raise TypeError("positional arguments must be Q objects")
            if not q.is_empty():
                clone._conditions.append(q)
        if lookups:
            clone._conditions.append(Q(**lookups))
        return clone

    def exclude(self, *qs, **lookups):
        combined = Q()
        combined.children = [("node", q) for q in qs]
        if lookups:
            combined.children.append(("leaf", lookups))
        if not combined.children:
            return self._clone()
        clone = self._clone()
        clone._conditions.append(~combined)
        return clone

    def order_by(self, *names):
        clone = self._clone()
        clone._order_by = list(names)
        return clone

    def all(self):
        if self._sticky_cache and self._result_cache is not None:
            return self
        return self._clone()

    def none(self):
        clone = self._clone()
        clone._conditions.append(Q(pk__in=[]))
        return clone

    # -- batch-oriented refinement ---------------------------------------
    def select_related(self, *names):
        """Eager-load forward FK paths with LEFT JOINs (one round trip).

        Paths may be nested (``"simulation__owner"``).  Each named
        relation — and every intermediate hop — is hydrated into the
        per-instance FK cache, so attribute traversal afterwards issues
        no queries.
        """
        clone = self._clone()
        merged = dict.fromkeys(self._select_related)
        for name in names:
            self._validate_related_path(name)
            merged[name] = None
        clone._select_related = tuple(merged)
        return clone

    def prefetch_related(self, *names):
        """Batch-load relations with one ``IN``-query per relation name.

        Accepts forward FK names (primes each instance's FK cache) and
        reverse relation names declared via ``related_name`` (primes the
        reverse accessor's result cache, so ``obj.things`` iterates and
        counts without touching the database).
        """
        from .fields import ForeignKey
        clone = self._clone()
        merged = dict.fromkeys(self._prefetch_related)
        meta = self.model._meta
        for name in names:
            field = meta.field_by_any_name(name)
            if not isinstance(field, ForeignKey) \
                    and name not in meta.related_objects:
                raise FieldError(
                    f"Cannot prefetch {name!r} on {self.model.__name__}; "
                    f"choices are "
                    f"{sorted([f.name for f in meta.foreign_keys()] + list(meta.related_objects))}")
            merged[name] = None
        clone._prefetch_related = tuple(merged)
        return clone

    def only(self, *names):
        """Load just *names* (plus pk and JOINed FK columns) from SQL.

        Unloaded columns are deferred: touching one later triggers a
        single-column fetch for that instance.  Use for listings that
        render a few columns of wide rows (e.g. ``Simulation.results``).
        """
        clone = self._clone()
        for name in names:
            self._validate_field_name(name, "only()")
        clone._only = set(names)
        return clone

    def defer(self, *names):
        """Complement of :meth:`only`: load everything except *names*."""
        clone = self._clone()
        for name in names:
            self._validate_field_name(name, "defer()")
        clone._defer = self._defer | frozenset(names)
        return clone

    def _validate_field_name(self, name, where):
        if self.model._meta.field_by_any_name(name) is None:
            raise FieldError(
                f"Unknown field {name!r} in {where} for "
                f"{self.model.__name__}")

    def _validate_related_path(self, path):
        from .fields import ForeignKey
        model = self.model
        for part in path.split("__"):
            field = model._meta.field_by_any_name(part)
            if not isinstance(field, ForeignKey):
                raise FieldError(
                    f"select_related path {path!r}: {part!r} is not a "
                    f"foreign key on {model.__name__}")
            model = field.resolve_target()

    # -- execution ---------------------------------------------------------
    def _join_plan(self):
        """Expand select_related paths into an ordered list of joins.

        Each node: path, alias, parent alias/path, FK field, target model.
        Shared prefixes join once (``"a__b"`` and ``"a__c"`` produce
        three joins, not four).
        """
        plan, by_path = [], {}
        for raw in self._select_related:
            parent_model, parent_alias, walked = self.model, "t0", []
            for part in raw.split("__"):
                walked.append(part)
                key = "__".join(walked)
                node = by_path.get(key)
                if node is None:
                    field = parent_model._meta.field_by_any_name(part)
                    node = {
                        "path": key,
                        "parent_path": "__".join(walked[:-1]) or None,
                        "alias": f"sr{len(plan) + 1}",
                        "parent_alias": parent_alias,
                        "field": field,
                        "target": field.resolve_target(),
                    }
                    by_path[key] = node
                    plan.append(node)
                parent_model, parent_alias = node["target"], node["alias"]
        return plan

    def _projected_fields(self):
        """Fields to SELECT for the base model; None means all of them."""
        meta = self.model._meta
        if self._only is None and not self._defer:
            return None
        deferred = {meta.field_by_any_name(n) for n in self._defer}
        if self._only is not None:
            wanted = {meta.field_by_any_name(n)
                      for n in self._only} - deferred
        else:
            wanted = set(meta.fields) - deferred
        join_fks = {meta.field_by_any_name(p.split("__")[0])
                    for p in self._select_related}
        return [field for field in meta.fields
                if field.primary_key or field in wanted
                or field in join_fks]

    def _cache_probe(self, kind, extra=()):
        """Shape this queryset for the compiled-query cache.

        Returns ``(key, raw_values, entry)``: *key* is None when the
        shape can't be keyed (fall through to a plain compile), *entry*
        is the cached compile on a hit (with *raw_values* ready for its
        binders).  ``FieldError`` from the shape walk propagates — it's
        the same error the compiler itself would raise.
        """
        if not compiled_cache.enabled:
            return None, None, None
        try:
            cond_shape, raw_values = _shape_conditions(self._conditions)
        except (TypeError, ValueError):
            # Malformed lookup values (e.g. a 3-tuple range): let the
            # real compiler produce its own error for them.
            compiled_cache.uncacheable += 1
            return None, None, None
        key = (self.model, kind, cond_shape, *extra)
        return key, raw_values, compiled_cache.get(key)

    def _build_select(self):
        """Compile this queryset; returns (sql, params, plan, fields).

        *fields* is the base-model projection (None = every column).
        """
        meta = self.model._meta
        cache_key, raw_values, entry = self._cache_probe(
            "select",
            (tuple(self._order_by), self._limit, self._offset,
             self._select_related,
             None if self._only is None else frozenset(self._only),
             self._defer))
        if entry is not None:
            params = [bind(v) for bind, v
                      in zip(entry["binders"], raw_values)]
            return entry["sql"], params, entry["plan"], entry["fields"]
        plan = self._join_plan()
        base_alias = "t0" if plan else None
        compiler = QueryCompiler(self.model, base_alias=base_alias)
        fields = self._projected_fields()
        base_fields = fields if fields is not None else meta.fields
        if plan:
            cols = [f'"t0"."{f.column}" AS "{f.column}"'
                    for f in base_fields]
            for node in plan:
                prefix = node["path"]
                for f in node["target"]._meta.fields:
                    cols.append(f'"{node["alias"]}"."{f.column}" '
                                f'AS "{prefix}__{f.column}"')
            sql = (f'SELECT {", ".join(cols)} '
                   f'FROM "{meta.table_name}" "t0"')
            for node in plan:
                tmeta = node["target"]._meta
                sql += (f' LEFT JOIN "{tmeta.table_name}" '
                        f'"{node["alias"]}" ON '
                        f'"{node["parent_alias"]}".'
                        f'"{node["field"].column}" = '
                        f'"{node["alias"]}"."{tmeta.pk.column}"')
        else:
            if fields is not None:
                col_sql = ", ".join(f'"{f.column}"' for f in base_fields)
            else:
                col_sql = "*"
            sql = f'SELECT {col_sql} FROM "{meta.table_name}"'
        binders = []
        where, params = compiler.compile_where(self._conditions,
                                               binders=binders)
        sql += where + compiler.compile_order(self._order_by)
        if self._limit is not None or self._offset is not None:
            sql += f" LIMIT {self._limit if self._limit is not None else -1}"
            if self._offset:
                sql += f" OFFSET {self._offset}"
        compiled_cache.compiles += 1
        if cache_key is not None and len(binders) == len(params) \
                and len(raw_values) == len(params):
            compiled_cache.put(cache_key, {"sql": sql, "plan": plan,
                                           "fields": fields,
                                           "binders": binders})
        return sql, params, plan, fields

    def _select_sql(self, columns="*"):
        """Back-compat shim: (sql, params) of the compiled SELECT."""
        sql, params, _, _ = self._build_select()
        return sql, params

    def _fetch(self):
        if self._result_cache is not None:
            return self._result_cache
        sql, params, plan, fields = self._build_select()
        # A JOIN reads the joined tables too: the role must hold SELECT
        # on every one of them, not just the base table.
        for node in plan:
            self.db.check_permission("select",
                                     node["target"]._meta.table_name)
        cur = self.db.execute(sql, params, operation="select",
                              table=self.model._meta.table_name)
        rows = [dict(row) for row in cur.fetchall()]
        instances = []
        for row in rows:
            obj = self.model._from_db_row(row, self.db, fields=fields)
            hydrated = {None: obj}
            for node in plan:
                parent = hydrated.get(node["parent_path"])
                if parent is None:
                    hydrated[node["path"]] = None
                    continue
                cache = parent.__dict__.setdefault("_fk_cache", {})
                fk_id = getattr(parent, node["field"].attname)
                if fk_id is None:
                    cache[node["field"].name] = None
                    hydrated[node["path"]] = None
                    continue
                prefix = node["path"] + "__"
                sub = {key[len(prefix):]: value
                       for key, value in row.items()
                       if key.startswith(prefix)}
                related = node["target"]._from_db_row(sub, self.db)
                cache[node["field"].name] = related
                hydrated[node["path"]] = related
            instances.append(obj)
        if self._prefetch_related and instances:
            self._do_prefetch(instances)
        self._result_cache = instances
        return self._result_cache

    def _do_prefetch(self, instances):
        """One IN-query per prefetch name, priming per-instance caches."""
        from .fields import ForeignKey
        meta = self.model._meta
        for name in self._prefetch_related:
            field = meta.field_by_any_name(name)
            if isinstance(field, ForeignKey):
                target = field.resolve_target()
                ids = sorted({getattr(obj, field.attname)
                              for obj in instances} - {None})
                related = {}
                if ids:
                    related = {obj.pk: obj for obj in
                               target.objects.using(self.db).filter(
                                   pk__in=ids)}
                for obj in instances:
                    cache = obj.__dict__.setdefault("_fk_cache", {})
                    cache[field.name] = related.get(
                        getattr(obj, field.attname))
            else:
                related_model, fk = meta.related_objects[name]
                pks = [obj.pk for obj in instances if obj.pk is not None]
                groups = {}
                for rel in related_model.objects.using(self.db).filter(
                        **{fk.attname + "__in": pks}):
                    groups.setdefault(getattr(rel, fk.attname),
                                      []).append(rel)
                for obj in instances:
                    store = obj.__dict__.setdefault(
                        "_prefetched_objects", {})
                    store[name] = groups.get(obj.pk, [])

    def __iter__(self):
        return iter(self._fetch())

    def __len__(self):
        return len(self._fetch())

    def __bool__(self):
        return bool(self._fetch())

    def __getitem__(self, item):
        if isinstance(item, slice):
            if (item.start or 0) < 0 or (item.stop is not None and item.stop < 0):
                raise ValueError("Negative slicing is not supported")
            clone = self._clone()
            clone._offset = (self._offset or 0) + (item.start or 0)
            if item.stop is not None:
                clone._limit = item.stop - (item.start or 0)
            return clone
        if item < 0:
            raise ValueError("Negative indexing is not supported")
        return self._fetch()[item]

    # -- terminal methods --------------------------------------------------
    def get(self, *qs, **lookups):
        results = list(self.filter(*qs, **lookups)[:2])
        if not results:
            raise self.model.DoesNotExist(
                f"{self.model.__name__} matching query does not exist "
                f"({lookups!r})")
        if len(results) > 1:
            raise self.model.MultipleObjectsReturned(
                f"get() returned more than one {self.model.__name__}")
        return results[0]

    def first(self):
        results = list(self[:1])
        return results[0] if results else None

    def last(self):
        order = self._order_by or self.model._meta.ordering or ["pk"]
        flipped = [n[1:] if n.startswith("-") else "-" + n for n in order]
        return self.order_by(*flipped).first()

    def count(self):
        if self._result_cache is not None:
            return len(self._result_cache)
        cache_key, raw_values, entry = self._cache_probe("count")
        if entry is not None:
            sql = entry["sql"]
            params = [bind(v) for bind, v
                      in zip(entry["binders"], raw_values)]
        else:
            compiler = QueryCompiler(self.model)
            binders = []
            where, params = compiler.compile_where(self._conditions,
                                                   binders=binders)
            sql = (f'SELECT COUNT(*) FROM '
                   f'"{self.model._meta.table_name}"' + where)
            compiled_cache.compiles += 1
            if cache_key is not None and len(binders) == len(params) \
                    and len(raw_values) == len(params):
                compiled_cache.put(cache_key, {"sql": sql, "plan": [],
                                               "fields": None,
                                               "binders": binders})
        cur = self.db.execute(sql, params, operation="select",
                              table=self.model._meta.table_name)
        return cur.fetchone()[0]

    def exists(self):
        if self._result_cache is not None:
            return bool(self._result_cache)
        return bool(list(self[:1]))

    def delete(self):
        """Delete matching rows; returns number deleted."""
        compiler = QueryCompiler(self.model)
        where, params = compiler.compile_where(self._conditions)
        sql = f'DELETE FROM "{self.model._meta.table_name}"' + where
        cur = self.db.execute(sql, params, operation="delete",
                              table=self.model._meta.table_name)
        if cur.rowcount:
            from ..signals import post_delete
            post_delete.send(self.model, instance=None,
                             rows=cur.rowcount, db=self.db)
        return cur.rowcount

    def update(self, **values):
        """Bulk UPDATE of matching rows; returns number updated.

        Values pass through the same field ``clean()`` pipeline as
        ``save()`` — the strict-typing guarantee holds for bulk writes too.
        """
        if not values:
            return 0
        meta = self.model._meta
        sets, params = [], []
        for name, value in values.items():
            field = meta.field_by_any_name(name)
            if field is None:
                raise FieldError(f"Unknown field {name!r} in update()")
            cleaned = field.clean(value)
            sets.append(f'"{field.column}" = ?')
            params.append(field.to_db(cleaned))
        compiler = QueryCompiler(self.model)
        where, wparams = compiler.compile_where(self._conditions)
        sql = (f'UPDATE "{meta.table_name}" SET ' + ", ".join(sets) + where)
        cur = self.db.execute(sql, params + wparams, operation="update",
                              table=meta.table_name)
        if cur.rowcount:
            from ..signals import post_save
            post_save.send(self.model, instance=None, created=False,
                           rows=cur.rowcount, db=self.db)
        return cur.rowcount

    #: Keep one statement comfortably inside SQLite's bound-parameter
    #: ceiling (999 on the oldest deployments still in the wild).
    _BULK_PARAM_BUDGET = 900

    def bulk_update(self, objs, fields, batch_size=None):
        """Write *fields* of *objs* back in one UPDATE per batch.

        Compiles ``SET col = CASE pk WHEN ? THEN ? ... END`` so a poll
        cycle's accumulated state changes cost one round trip instead of
        one per row.  Values pass through ``clean()`` exactly as
        ``save()`` would, and ``auto_now`` timestamp columns are
        re-stamped automatically (matching ``save()`` semantics).
        Returns the number of rows matched.
        """
        from .fields import DateTimeField
        meta = self.model._meta
        objs = [obj for obj in objs if obj.pk is not None]
        if not objs:
            return 0
        field_list = []
        for name in fields:
            field = meta.field_by_any_name(name)
            if field is None:
                raise FieldError(
                    f"Unknown field {name!r} in bulk_update()")
            if field.primary_key:
                raise FieldError("bulk_update() cannot write the primary key")
            if field not in field_list:
                field_list.append(field)
        for field in meta.fields:
            if isinstance(field, DateTimeField) and field.auto_now \
                    and field not in field_list:
                field_list.append(field)
        if not field_list:
            return 0
        if batch_size is None:
            per_row = 2 * len(field_list) + 1
            batch_size = max(1, self._BULK_PARAM_BUDGET // per_row)
        total = 0
        for start in range(0, len(objs), batch_size):
            chunk = objs[start:start + batch_size]
            sets, params = [], []
            for field in field_list:
                whens = []
                for obj in chunk:
                    if isinstance(field, DateTimeField) and field.auto_now:
                        value = field.pre_save(obj, False)
                    else:
                        value = field.clean(getattr(obj, field.attname))
                        setattr(obj, field.attname, value)
                    whens.append("WHEN ? THEN ?")
                    params.extend([meta.pk.to_db(obj.pk),
                                   field.to_db(value)])
                sets.append(
                    f'"{field.column}" = CASE "{meta.pk.column}" '
                    + " ".join(whens) + f' ELSE "{field.column}" END')
            marks = ", ".join("?" for _ in chunk)
            sql = (f'UPDATE "{meta.table_name}" SET ' + ", ".join(sets)
                   + f' WHERE "{meta.pk.column}" IN ({marks})')
            params.extend(meta.pk.to_db(obj.pk) for obj in chunk)
            cur = self.db.execute(sql, params, operation="update",
                                  table=meta.table_name)
            total += cur.rowcount
        if total:
            from ..signals import post_save
            post_save.send(self.model, instance=None, created=False,
                           instances=objs, rows=total, db=self.db)
        return total

    def bulk_create(self, objects, batch_size=None):
        """Create *objects* with multi-row INSERT batches."""
        return self._bulk_insert(list(objects), batch_size=batch_size)

    def _bulk_insert(self, objs, batch_size=None):
        """Multi-row INSERT backing ``bulk_create``.

        Every object passes ``full_clean()`` first — the strict
        marshaling guarantee is identical to ``save()``.  Objects with a
        preset pk are saved row-at-a-time (explicit rowids don't compose
        with multi-row assignment); the rest insert in batches and
        recover their pks from ``lastrowid``.
        """
        from .fields import AutoField, DateTimeField
        meta = self.model._meta
        if not objs:
            return objs
        columns = [f for f in meta.fields if not isinstance(f, AutoField)]
        fresh = []
        for obj in objs:
            if obj.pk is not None or not columns:
                obj.save(db=self.db, force_insert=True)
            else:
                fresh.append(obj)
        if not fresh:
            return objs
        if batch_size is None:
            batch_size = max(1, self._BULK_PARAM_BUDGET
                             // max(len(columns), 1))
        col_sql = ", ".join(f'"{f.column}"' for f in columns)
        row_marks = "(" + ", ".join("?" for _ in columns) + ")"
        for start in range(0, len(fresh), batch_size):
            chunk = fresh[start:start + batch_size]
            params = []
            for obj in chunk:
                obj.full_clean()
                for field in columns:
                    if isinstance(field, DateTimeField):
                        value = field.pre_save(obj, True)
                    else:
                        value = getattr(obj, field.attname)
                    params.append(field.to_db(value))
            sql = (f'INSERT INTO "{meta.table_name}" ({col_sql}) VALUES '
                   + ", ".join([row_marks] * len(chunk)))
            cur = self.db.execute(sql, params, operation="insert",
                                  table=meta.table_name)
            for offset, obj in enumerate(chunk):
                obj.pk = cur.lastrowid - len(chunk) + 1 + offset
                obj._state_adding = False
                obj._state_db = self.db
        from ..signals import post_save
        post_save.send(self.model, instance=None, created=True,
                       instances=fresh, rows=len(fresh), db=self.db)
        return objs

    def values(self, *names):
        """Return a list of dicts restricted to *names* (or all fields)."""
        meta = self.model._meta
        if not names:
            names = [f.attname for f in meta.fields]
        rows = []
        for obj in self._fetch():
            rows.append({n: getattr(obj, n if n != "pk" else meta.pk.attname)
                         for n in names})
        return rows

    def values_list(self, *names, flat=False):
        rows = self.values(*names)
        if flat:
            if len(names) != 1:
                raise FieldError("flat=True requires exactly one field")
            return [r[names[0]] for r in rows]
        return [tuple(r[n] for n in names) for r in rows]

    def in_bulk(self, ids):
        objs = self.filter(pk__in=list(ids))
        return {obj.pk: obj for obj in objs}

    def create(self, **kwargs):
        """Create and save an instance through this queryset's database."""
        obj = self.model(**kwargs)
        obj.save(db=self.db)
        return obj

    def get_or_create(self, defaults=None, **lookups):
        try:
            return self.get(**lookups), False
        except self.model.DoesNotExist:
            params = dict(lookups)
            params.update(defaults or {})
            return self.create(**params), True

    def update_or_create(self, defaults=None, **lookups):
        """Update the matching row with *defaults*, or create it.

        Returns ``(object, created)``.
        """
        defaults = defaults or {}
        try:
            obj = self.get(**lookups)
            for key, value in defaults.items():
                setattr(obj, key, value)
            obj.save(db=self.db)
            return obj, False
        except self.model.DoesNotExist:
            params = dict(lookups)
            params.update(defaults)
            return self.create(**params), True

    def distinct_values(self, field_name):
        """Sorted distinct values of one column."""
        from .aggregates import run_values_count
        return sorted(run_values_count(self, field_name),
                      key=lambda v: (v is None, v))

    def aggregate(self, **named_aggregates):
        """Run aggregates (Count/Sum/Avg/Min/Max) over this queryset."""
        from .aggregates import run_aggregate
        return run_aggregate(self, named_aggregates)

    def values_count(self, field_name):
        """GROUP BY *field_name*; returns ``{value: count}``."""
        from .aggregates import run_values_count
        return run_values_count(self, field_name)

    def __repr__(self):  # pragma: no cover
        preview = list(self[:4])
        suffix = ", ..." if len(preview) > 3 else ""
        inner = ", ".join(repr(o) for o in preview[:3])
        return f"<QuerySet [{inner}{suffix}]>"
