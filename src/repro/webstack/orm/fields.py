"""Typed model fields with strict validation.

The AMP paper stresses that *all* user input is marshaled through database
tables "with strict data type constraints" before the GridAMP daemon ever
regenerates input files from it.  Fields are therefore not passive column
declarations: every assignment that reaches ``save()`` passes through
``clean()``, which coerces and validates, and the generated DDL carries the
matching SQL constraints (NOT NULL, UNIQUE, CHECK for choices).
"""

from __future__ import annotations

import datetime as _dt
import json
import re

from .exceptions import ValidationError

#: Sentinel distinguishing "no default provided" from "default is None".
NOT_PROVIDED = object()

_EMAIL_RE = re.compile(r"^[^@\s]+@[^@\s]+\.[^@\s]+$")


class Field:
    """Base class for model columns.

    Parameters
    ----------
    null:
        Whether SQL NULL is permitted.
    default:
        Default value (or zero-argument callable producing one).
    unique:
        Add a UNIQUE constraint.
    primary_key:
        Use this column as the primary key.
    choices:
        Optional sequence of ``(value, label)`` pairs; values outside the
        set fail validation and are excluded by a CHECK constraint.
    db_index:
        Create a secondary index for this column.
    verbose_name:
        Human-readable name used by forms and the admin.
    help_text:
        Description surfaced in forms and the admin.
    editable:
        Whether the field appears in generated forms / the admin change
        view.  Auto-managed columns set this to False.
    """

    #: SQLite storage class for the column.
    db_type = "TEXT"
    #: Python type produced by ``to_python`` (documentation/introspection).
    python_type = str

    # Creation counter preserves declaration order across metaclass
    # collection, exactly as Django does.
    _creation_counter = 0

    def __init__(self, *, null=False, default=NOT_PROVIDED, unique=False,
                 primary_key=False, choices=None, db_index=False,
                 verbose_name=None, help_text="", editable=True):
        self.null = null
        self.default = default
        self.unique = unique
        self.primary_key = primary_key
        self.choices = list(choices) if choices else None
        self.db_index = db_index
        self.verbose_name = verbose_name
        self.help_text = help_text
        self.editable = editable
        self.name = None          # set by contribute_to_class
        self.model = None
        self.attname = None       # attribute name on instances
        self.column = None        # database column name
        self._order = Field._creation_counter
        Field._creation_counter += 1

    # ------------------------------------------------------------------
    # Metaclass wiring
    # ------------------------------------------------------------------
    def contribute_to_class(self, model, name):
        """Attach this field to *model* under attribute *name*."""
        self.name = name
        self.attname = name
        self.column = name
        self.model = model
        if self.verbose_name is None:
            self.verbose_name = name.replace("_", " ")
        model._meta.add_field(self)

    # ------------------------------------------------------------------
    # Value handling
    # ------------------------------------------------------------------
    def has_default(self):
        return self.default is not NOT_PROVIDED

    def get_default(self):
        if not self.has_default():
            return None
        return self.default() if callable(self.default) else self.default

    def to_python(self, value):
        """Coerce a raw value to the field's Python type.

        Subclasses override; raising :class:`ValidationError` here is the
        canonical way to reject garbage.
        """
        return value

    def from_db(self, value):
        """Convert a value read from SQLite into the Python type."""
        if value is None:
            return None
        return self.to_python(value)

    def to_db(self, value):
        """Convert a Python value into something sqlite3 can bind."""
        return value

    def clean(self, value):
        """Full validation pipeline: coerce, then check constraints."""
        if value is None:
            if self.null or self.primary_key or self.has_default():
                return None
            raise ValidationError({self.name or "?": "This field cannot be null."})
        value = self.to_python(value)
        self.validate(value)
        return value

    def validate(self, value):
        if self.choices is not None:
            allowed = [c[0] for c in self.choices]
            if value not in allowed:
                raise ValidationError(
                    {self.name or "?": f"Value {value!r} is not a valid choice."})

    # ------------------------------------------------------------------
    # Schema generation
    # ------------------------------------------------------------------
    def db_column_sql(self):
        """Return the column definition fragment for CREATE TABLE."""
        parts = [f'"{self.column}"', self.db_type]
        if self.primary_key:
            parts.append("PRIMARY KEY")
        if not self.null and not self.primary_key:
            parts.append("NOT NULL")
        if self.unique and not self.primary_key:
            parts.append("UNIQUE")
        if self.choices is not None:
            quoted = ", ".join(_sql_literal(c[0]) for c in self.choices)
            parts.append(f'CHECK ("{self.column}" IN ({quoted}))')
        return " ".join(parts)

    def form_field_kwargs(self):
        """Hints for building a matching form field."""
        return {
            "required": not self.null and not self.has_default(),
            "label": self.verbose_name,
            "help_text": self.help_text,
            "choices": self.choices,
        }

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}: {self.name}>"


def _sql_literal(value):
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, bool):
        return "1" if value else "0"
    return str(value)


class AutoField(Field):
    """Integer primary key assigned by SQLite's rowid machinery."""

    db_type = "INTEGER"
    python_type = int

    def __init__(self, **kw):
        kw.setdefault("primary_key", True)
        kw.setdefault("editable", False)
        super().__init__(**kw)

    def to_python(self, value):
        try:
            return int(value)
        except (TypeError, ValueError):
            raise ValidationError({self.name or "?": f"{value!r} is not an integer."})

    def db_column_sql(self):
        return f'"{self.column}" INTEGER PRIMARY KEY AUTOINCREMENT'


class IntegerField(Field):
    db_type = "INTEGER"
    python_type = int

    def __init__(self, *, min_value=None, max_value=None, **kw):
        super().__init__(**kw)
        self.min_value = min_value
        self.max_value = max_value

    def to_python(self, value):
        if isinstance(value, bool):
            raise ValidationError({self.name or "?": "Booleans are not integers."})
        try:
            return int(value)
        except (TypeError, ValueError):
            raise ValidationError({self.name or "?": f"{value!r} is not an integer."})

    def validate(self, value):
        super().validate(value)
        if self.min_value is not None and value < self.min_value:
            raise ValidationError(
                {self.name or "?": f"Value {value} below minimum {self.min_value}."})
        if self.max_value is not None and value > self.max_value:
            raise ValidationError(
                {self.name or "?": f"Value {value} above maximum {self.max_value}."})


class FloatField(Field):
    db_type = "REAL"
    python_type = float

    def __init__(self, *, min_value=None, max_value=None, **kw):
        super().__init__(**kw)
        self.min_value = min_value
        self.max_value = max_value

    def to_python(self, value):
        if isinstance(value, bool):
            raise ValidationError({self.name or "?": "Booleans are not floats."})
        try:
            value = float(value)
        except (TypeError, ValueError):
            raise ValidationError({self.name or "?": f"{value!r} is not a float."})
        if value != value:  # NaN: never a legitimate marshaled science input
            raise ValidationError({self.name or "?": "NaN is not permitted."})
        return value

    def validate(self, value):
        super().validate(value)
        if self.min_value is not None and value < self.min_value:
            raise ValidationError(
                {self.name or "?": f"Value {value} below minimum {self.min_value}."})
        if self.max_value is not None and value > self.max_value:
            raise ValidationError(
                {self.name or "?": f"Value {value} above maximum {self.max_value}."})


class BooleanField(Field):
    db_type = "INTEGER"
    python_type = bool

    def to_python(self, value):
        if isinstance(value, bool):
            return value
        if value in (0, 1):
            return bool(value)
        if isinstance(value, str):
            if value.lower() in ("true", "1", "yes", "on"):
                return True
            if value.lower() in ("false", "0", "no", "off", ""):
                return False
        raise ValidationError({self.name or "?": f"{value!r} is not a boolean."})

    def to_db(self, value):
        if value is None:
            return None
        return 1 if value else 0

    def from_db(self, value):
        if value is None:
            return None
        return bool(value)


class CharField(Field):
    db_type = "TEXT"
    python_type = str

    def __init__(self, *, max_length=255, **kw):
        super().__init__(**kw)
        self.max_length = max_length

    def to_python(self, value):
        if isinstance(value, (bytes, bytearray)):
            value = value.decode("utf-8")
        if not isinstance(value, str):
            value = str(value)
        return value

    def validate(self, value):
        super().validate(value)
        if self.max_length is not None and len(value) > self.max_length:
            raise ValidationError(
                {self.name or "?":
                 f"Length {len(value)} exceeds max_length {self.max_length}."})

    def db_column_sql(self):
        sql = super().db_column_sql()
        if self.max_length is not None:
            sql += f' CHECK (LENGTH("{self.column}") <= {self.max_length})'
        return sql


class TextField(CharField):
    """Unbounded text."""

    def __init__(self, **kw):
        kw.setdefault("max_length", None)
        super().__init__(**kw)


class EmailField(CharField):
    def validate(self, value):
        super().validate(value)
        if value and not _EMAIL_RE.match(value):
            raise ValidationError(
                {self.name or "?": f"{value!r} is not a valid e-mail address."})


class DateTimeField(Field):
    """Timezone-naive UTC timestamps stored as ISO-8601 text.

    ``auto_now_add`` stamps creation time; ``auto_now`` re-stamps on every
    save.  AMP's provenance metadata (when a simulation was submitted, when
    a job last changed state) uses these.
    """

    db_type = "TEXT"
    python_type = _dt.datetime

    def __init__(self, *, auto_now=False, auto_now_add=False, **kw):
        if auto_now or auto_now_add:
            kw.setdefault("editable", False)
            kw.setdefault("null", True)
        super().__init__(**kw)
        self.auto_now = auto_now
        self.auto_now_add = auto_now_add

    def to_python(self, value):
        if isinstance(value, _dt.datetime):
            return value
        if isinstance(value, str):
            try:
                return _dt.datetime.fromisoformat(value)
            except ValueError:
                raise ValidationError(
                    {self.name or "?": f"{value!r} is not an ISO datetime."})
        raise ValidationError({self.name or "?": f"{value!r} is not a datetime."})

    def to_db(self, value):
        if value is None:
            return None
        if isinstance(value, _dt.datetime):
            return value.isoformat(sep=" ")
        return str(value)

    def pre_save(self, instance, add):
        """Apply auto_now/auto_now_add stamping; returns the value to store."""
        if self.auto_now or (self.auto_now_add and add):
            value = _dt.datetime.utcnow()
            setattr(instance, self.attname, value)
            return value
        return getattr(instance, self.attname)


class JSONField(Field):
    """Arbitrary JSON-serialisable payloads stored as text.

    Used for unstructured daemon bookkeeping (e.g. the plain-text transient
    status messages shown next to a job).
    """

    db_type = "TEXT"
    python_type = object

    def to_python(self, value):
        if isinstance(value, str):
            try:
                return json.loads(value)
            except json.JSONDecodeError:
                raise ValidationError(
                    {self.name or "?": "Value is not valid JSON."})
        return value

    def from_db(self, value):
        if value is None:
            return None
        return json.loads(value)

    def to_db(self, value):
        if value is None:
            return None
        return json.dumps(value, sort_keys=True)

    def clean(self, value):
        if value is None:
            return super().clean(value)
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            raise ValidationError(
                {self.name or "?": "Value is not JSON-serialisable."})
        return value


class ForeignKey(Field):
    """Reference to another model's primary key.

    Access via the attribute name returns the related *instance* (fetched
    lazily and cached); the raw id is available at ``<name>_id``.

    Parameters
    ----------
    to:
        Target model class, or its name as a string for forward references
        resolved at schema-creation time.
    on_delete:
        ``"CASCADE"`` or ``"PROTECT"`` or ``"SET_NULL"``; enforced by the
        generated REFERENCES clause.
    related_name:
        Name of the reverse accessor added to the target model (a manager
        returning the referencing rows).
    """

    db_type = "INTEGER"

    def __init__(self, to, *, on_delete="CASCADE", related_name=None, **kw):
        super().__init__(**kw)
        self.to = to
        self.on_delete = on_delete
        self.related_name = related_name

    def contribute_to_class(self, model, name):
        self.name = name
        self.attname = name + "_id"
        self.column = name + "_id"
        self.model = model
        if self.verbose_name is None:
            self.verbose_name = name.replace("_", " ")
        model._meta.add_field(self)
        setattr(model, name, _ForwardRelationDescriptor(self))

    def resolve_target(self):
        """Return the target model class (resolving string references)."""
        if isinstance(self.to, str):
            from .models import get_registered_model
            self.to = get_registered_model(self.to)
        return self.to

    def to_python(self, value):
        try:
            return int(value)
        except (TypeError, ValueError):
            raise ValidationError(
                {self.name or "?": f"{value!r} is not a valid foreign key id."})

    def db_column_sql(self):
        target = self.resolve_target()
        action = {"CASCADE": "CASCADE", "PROTECT": "RESTRICT",
                  "SET_NULL": "SET NULL"}[self.on_delete]
        sql = super().db_column_sql()
        sql += (f' REFERENCES "{target._meta.table_name}"'
                f'("{target._meta.pk.column}") ON DELETE {action}')
        return sql


class _ForwardRelationDescriptor:
    """Instance attribute that lazily resolves a ForeignKey to its object."""

    def __init__(self, field):
        self.field = field

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        cache = instance.__dict__.setdefault("_fk_cache", {})
        if self.field.name in cache:
            return cache[self.field.name]
        fk_id = getattr(instance, self.field.attname, None)
        if fk_id is None:
            return None
        target = self.field.resolve_target()
        obj = target.objects.using(instance._state_db).get(pk=fk_id)
        cache[self.field.name] = obj
        return obj

    def __set__(self, instance, value):
        cache = instance.__dict__.setdefault("_fk_cache", {})
        if value is None:
            setattr(instance, self.field.attname, None)
            cache.pop(self.field.name, None)
        elif hasattr(value, "pk"):
            setattr(instance, self.field.attname, value.pk)
            cache[self.field.name] = value
        else:
            # Raw id assignment through the relation name.
            setattr(instance, self.field.attname, int(value))
            cache.pop(self.field.name, None)
