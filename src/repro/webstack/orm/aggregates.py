"""Aggregate queries: Count/Sum/Avg/Min/Max over QuerySets.

Usage mirrors Django's ``aggregate()``::

    Simulation.objects.filter(state="DONE").aggregate(
        total=Count("id"), su=Sum("su_used"))

and per-column ``values_count()`` provides the GROUP BY the portal's
statistics page needs.
"""

from __future__ import annotations

from .exceptions import FieldError


class Aggregate:
    """Base aggregate: SQL function over one column."""

    function = None

    def __init__(self, field_name):
        self.field_name = field_name

    def sql(self, compiler):
        if self.field_name == "*":
            return f"{self.function}(*)"
        column, _, _ = compiler.resolve_column(self.field_name)
        return f'{self.function}("{column}")'

    def convert(self, value):
        return value


class Count(Aggregate):
    function = "COUNT"

    def convert(self, value):
        return int(value or 0)


class Sum(Aggregate):
    function = "TOTAL"   # SQLite TOTAL: 0.0 instead of NULL on empty

    def convert(self, value):
        return float(value or 0.0)


class Avg(Aggregate):
    function = "AVG"


class Min(Aggregate):
    function = "MIN"


class Max(Aggregate):
    function = "MAX"


def run_aggregate(queryset, named_aggregates):
    """Execute aggregates over *queryset*; returns {name: value}."""
    from .query import QueryCompiler
    if not named_aggregates:
        raise FieldError("aggregate() requires at least one aggregate")
    compiler = QueryCompiler(queryset.model)
    where, params = compiler.compile_where(queryset._conditions)
    selects = []
    order = []
    for name, aggregate in named_aggregates.items():
        if not isinstance(aggregate, Aggregate):
            raise FieldError(
                f"aggregate {name!r} is not an Aggregate instance")
        selects.append(aggregate.sql(compiler))
        order.append((name, aggregate))
    sql = (f'SELECT {", ".join(selects)} FROM '
           f'"{queryset.model._meta.table_name}"' + where)
    cursor = queryset.db.execute(
        sql, params, operation="select",
        table=queryset.model._meta.table_name)
    row = cursor.fetchone()
    return {name: aggregate.convert(row[index])
            for index, (name, aggregate) in enumerate(order)}


def run_values_count(queryset, field_name):
    """GROUP BY *field_name* with counts; returns {value: count}."""
    from .query import QueryCompiler
    compiler = QueryCompiler(queryset.model)
    column, field, _ = compiler.resolve_column(field_name)
    where, params = compiler.compile_where(queryset._conditions)
    sql = (f'SELECT "{column}", COUNT(*) FROM '
           f'"{queryset.model._meta.table_name}"' + where +
           f' GROUP BY "{column}"')
    cursor = queryset.db.execute(
        sql, params, operation="select",
        table=queryset.model._meta.table_name)
    return {field.from_db(value): int(count)
            for value, count in cursor.fetchall()}
