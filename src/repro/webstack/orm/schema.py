"""Schema generation — the ORM's ``syncdb`` equivalent.

The paper's authors were initially "skeptical that the ORM would be
sufficiently robust" to own the schema, then found they could reproduce
their hand-written schema "with perfect table/field/type correspondence,
including our desired permissions scheme, all from within Django's ORM",
and rebuild it on demand (including sample data) for test databases.
:func:`create_all` + :func:`bind` provide exactly that workflow.
"""

from __future__ import annotations

from .exceptions import FieldError
from .models import resolve_pending_relations


def create_table_sql(model):
    """Return the CREATE TABLE (+ index) statements for *model*."""
    meta = model._meta
    if meta.abstract:
        raise FieldError(f"Cannot create table for abstract {model.__name__}")
    columns = [f.db_column_sql() for f in meta.fields]
    constraints = []
    for group in meta.unique_together:
        cols = ", ".join(f'"{meta.field_by_any_name(n).column}"'
                         for n in group)
        constraints.append(f"UNIQUE ({cols})")
    body = ",\n    ".join(columns + constraints)
    statements = [
        f'CREATE TABLE IF NOT EXISTS "{meta.table_name}" (\n    {body}\n)']
    for field in meta.fields:
        if field.db_index and not field.unique and not field.primary_key:
            statements.append(
                f'CREATE INDEX IF NOT EXISTS '
                f'"idx_{meta.table_name}_{field.column}" '
                f'ON "{meta.table_name}" ("{field.column}")')
    # Declarative composite/secondary indexes from Meta.indexes.
    for group in meta.indexes:
        columns = []
        for name in group:
            field = meta.field_by_any_name(name)
            if field is None:
                raise FieldError(
                    f"Meta.indexes names unknown field {name!r} on "
                    f"{model.__name__}")
            columns.append(field.column)
        index_name = f'idx_{meta.table_name}_' + "_".join(columns)
        cols_sql = ", ".join(f'"{c}"' for c in columns)
        statements.append(
            f'CREATE INDEX IF NOT EXISTS "{index_name}" '
            f'ON "{meta.table_name}" ({cols_sql})')
    return statements


def topological_order(models):
    """Order models so FK targets are created before referers."""
    remaining = list(models)
    ordered, placed = [], set()
    guard = 0
    while remaining:
        guard += 1
        if guard > len(models) ** 2 + 10:
            # FK cycle: SQLite tolerates forward references in DDL, so
            # just emit the rest in declaration order.
            ordered.extend(remaining)
            break
        model = remaining.pop(0)
        deps = {fk.resolve_target() for fk in model._meta.foreign_keys()}
        deps.discard(model)
        if all(d in placed or d not in models for d in deps):
            ordered.append(model)
            placed.add(model)
        else:
            remaining.append(model)
    return ordered


def create_all(models, db):
    """Create tables for *models* on *db* (requires the ``create`` grant)."""
    resolve_pending_relations()
    for model in topological_order(list(models)):
        for sql in create_table_sql(model):
            db.execute(sql, operation="create",
                       table=model._meta.table_name)


def bind(models, db):
    """Set the default database used by these models' managers.

    Per-call ``using()`` overrides remain available; binding just sets the
    fallback so application code reads naturally.
    """
    for model in models:
        model._meta.database = db


def drop_all(models, db):
    for model in reversed(topological_order(list(models))):
        db.execute(f'DROP TABLE IF EXISTS "{model._meta.table_name}"',
                   operation="create", table=model._meta.table_name)


def required_grants(models, operations=("select", "insert", "update",
                                        "delete")):
    """Convenience: build a grant dict giving *operations* on these models."""
    return {m._meta.table_name: set(operations) for m in models}
