"""Model managers — the ``Model.objects`` entry point."""

from __future__ import annotations

from .query import QuerySet


class Manager:
    """Default per-model accessor producing fresh QuerySets.

    Mirrors the Django manager surface AMP used: ``objects.filter(...)``,
    ``objects.create(...)``, ``objects.get_or_create(...)``.  A manager may
    be bound to a specific role connection with ``using()`` — this is how
    the same model class serves both the portal and the daemon processes.
    """

    def __init__(self):
        self.model = None
        self.name = None

    def contribute_to_class(self, model, name):
        self.model = model
        self.name = name

    def __get__(self, instance, owner):
        if instance is not None:
            raise AttributeError(
                "Manager is not accessible via model instances")
        mgr = Manager()
        mgr.model = owner
        mgr.name = self.name
        return mgr

    # ------------------------------------------------------------------
    def get_queryset(self):
        return QuerySet(self.model)

    def using(self, db):
        return self.get_queryset().using(db)

    def all(self):
        return self.get_queryset()

    def filter(self, *qs, **lookups):
        return self.get_queryset().filter(*qs, **lookups)

    def exclude(self, *qs, **lookups):
        return self.get_queryset().exclude(*qs, **lookups)

    def get(self, *qs, **lookups):
        return self.get_queryset().get(*qs, **lookups)

    def order_by(self, *names):
        return self.get_queryset().order_by(*names)

    def select_related(self, *names):
        return self.get_queryset().select_related(*names)

    def prefetch_related(self, *names):
        return self.get_queryset().prefetch_related(*names)

    def only(self, *names):
        return self.get_queryset().only(*names)

    def defer(self, *names):
        return self.get_queryset().defer(*names)

    def none(self):
        return self.get_queryset().none()

    def count(self):
        return self.get_queryset().count()

    def exists(self):
        return self.get_queryset().exists()

    def first(self):
        return self.get_queryset().first()

    def values(self, *names):
        return self.get_queryset().values(*names)

    def values_list(self, *names, flat=False):
        return self.get_queryset().values_list(*names, flat=flat)

    def in_bulk(self, ids):
        return self.get_queryset().in_bulk(ids)

    def create(self, **kwargs):
        obj = self.model(**kwargs)
        obj.save()
        return obj

    def get_or_create(self, defaults=None, **lookups):
        """Return ``(object, created)`` in one call."""
        try:
            return self.get(**lookups), False
        except self.model.DoesNotExist:
            params = dict(lookups)
            params.update(defaults or {})
            return self.create(**params), True

    def update_or_create(self, defaults=None, **lookups):
        """Return ``(object, created)``, updating an existing match."""
        return self.get_queryset().update_or_create(defaults, **lookups)

    def bulk_update(self, objs, fields, batch_size=None):
        """One CASE-WHEN UPDATE per batch; see QuerySet.bulk_update."""
        return self.get_queryset().bulk_update(objs, fields,
                                               batch_size=batch_size)

    def last(self):
        return self.get_queryset().last()

    def aggregate(self, **named_aggregates):
        return self.get_queryset().aggregate(**named_aggregates)

    def values_count(self, field_name):
        return self.get_queryset().values_count(field_name)

    def bulk_create(self, objects, batch_size=None):
        """INSERT *objects* with multi-row VALUES batches.

        Objects with a preset primary key fall back to per-row inserts
        (they bypass rowid assignment); the common no-pk path costs one
        round trip per batch, with pks recovered from the statement's
        ``lastrowid`` (SQLite assigns consecutive rowids within a single
        multi-row INSERT).
        """
        return self.get_queryset().bulk_create(objects,
                                               batch_size=batch_size)
