"""Model managers — the ``Model.objects`` entry point."""

from __future__ import annotations

from .query import QuerySet


class Manager:
    """Default per-model accessor producing fresh QuerySets.

    Mirrors the Django manager surface AMP used: ``objects.filter(...)``,
    ``objects.create(...)``, ``objects.get_or_create(...)``.  A manager may
    be bound to a specific role connection with ``using()`` — this is how
    the same model class serves both the portal and the daemon processes.
    """

    def __init__(self):
        self.model = None
        self.name = None

    def contribute_to_class(self, model, name):
        self.model = model
        self.name = name

    def __get__(self, instance, owner):
        if instance is not None:
            raise AttributeError(
                "Manager is not accessible via model instances")
        mgr = Manager()
        mgr.model = owner
        mgr.name = self.name
        return mgr

    # ------------------------------------------------------------------
    def get_queryset(self):
        return QuerySet(self.model)

    def using(self, db):
        return self.get_queryset().using(db)

    def all(self):
        return self.get_queryset()

    def filter(self, *qs, **lookups):
        return self.get_queryset().filter(*qs, **lookups)

    def exclude(self, *qs, **lookups):
        return self.get_queryset().exclude(*qs, **lookups)

    def get(self, *qs, **lookups):
        return self.get_queryset().get(*qs, **lookups)

    def order_by(self, *names):
        return self.get_queryset().order_by(*names)

    def none(self):
        return self.get_queryset().none()

    def count(self):
        return self.get_queryset().count()

    def exists(self):
        return self.get_queryset().exists()

    def first(self):
        return self.get_queryset().first()

    def values(self, *names):
        return self.get_queryset().values(*names)

    def values_list(self, *names, flat=False):
        return self.get_queryset().values_list(*names, flat=flat)

    def in_bulk(self, ids):
        return self.get_queryset().in_bulk(ids)

    def create(self, **kwargs):
        obj = self.model(**kwargs)
        obj.save()
        return obj

    def get_or_create(self, defaults=None, **lookups):
        """Return ``(object, created)`` in one call."""
        try:
            return self.get(**lookups), False
        except self.model.DoesNotExist:
            params = dict(lookups)
            params.update(defaults or {})
            return self.create(**params), True

    def bulk_create(self, objects):
        for obj in objects:
            obj.save(force_insert=True)
        return objects
