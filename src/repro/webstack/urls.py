"""URL routing with typed path converters.

Routes are declared Django-style::

    urlpatterns = [
        path("stars/", star_list, name="star-list"),
        path("stars/<int:pk>/", star_detail, name="star-detail"),
        path("catalog/<str:survey>/<int:number>/", catalog_entry),
    ]

Supported converters: ``int``, ``str`` (no slash), ``path`` (greedy),
``float``.  ``include()`` mounts an application's URLconf under a prefix —
this is how the portal composes its independent Django-style apps
(stars / results / submit / accounts) into one site.
"""

from __future__ import annotations

import re

from .http import Http404

_CONVERTERS = {
    "int": (r"\d+", int),
    "str": (r"[^/]+", str),
    "path": (r".+", str),
    "float": (r"[0-9]+(?:\.[0-9]+)?", float),
    "slug": (r"[-a-zA-Z0-9_]+", str),
}

_PARAM_RE = re.compile(r"<(?:(?P<conv>\w+):)?(?P<name>\w+)>")


class Route:
    """One compiled URL pattern."""

    def __init__(self, pattern, view, name=None):
        self.pattern = pattern
        self.view = view
        self.name = name
        self.regex, self.converters = self._compile(pattern)

    @staticmethod
    def _compile(pattern):
        regex_parts, converters = [], {}
        pos = 0
        for match in _PARAM_RE.finditer(pattern):
            regex_parts.append(re.escape(pattern[pos:match.start()]))
            conv = match.group("conv") or "str"
            name = match.group("name")
            if conv not in _CONVERTERS:
                raise ValueError(f"Unknown path converter {conv!r}")
            sub_re, caster = _CONVERTERS[conv]
            converters[name] = caster
            regex_parts.append(f"(?P<{name}>{sub_re})")
            pos = match.end()
        regex_parts.append(re.escape(pattern[pos:]))
        return re.compile("^" + "".join(regex_parts) + "$"), converters

    def match(self, path):
        m = self.regex.match(path)
        if m is None:
            return None
        return {name: self.converters[name](value)
                for name, value in m.groupdict().items()}

    def reverse_path(self, **kwargs):
        """Substitute kwargs back into the pattern (``reverse()``)."""
        def sub(match):
            name = match.group("name")
            if name not in kwargs:
                raise ValueError(f"Missing argument {name!r} for reverse of "
                                 f"{self.pattern!r}")
            return str(kwargs[name])
        return _PARAM_RE.sub(sub, self.pattern)


def path(pattern, view, name=None):
    return Route(pattern, view, name=name)


class Include:
    """A sub-URLconf mounted at a prefix."""

    def __init__(self, prefix, routes, namespace=None):
        self.prefix = prefix
        self.routes = list(routes)
        self.namespace = namespace


def include(prefix, routes, namespace=None):
    return Include(prefix, routes, namespace=namespace)


class URLResolver:
    """Resolves request paths to views and reverses names to paths."""

    def __init__(self, urlpatterns):
        self.routes = []           # (full_pattern Route, qualified name)
        self._flatten(urlpatterns, prefix="", namespace=None)
        self._by_name = {}
        for route, qualname in self.routes:
            if qualname:
                self._by_name[qualname] = route

    def _flatten(self, patterns, prefix, namespace):
        for entry in patterns:
            if isinstance(entry, Include):
                ns = entry.namespace if entry.namespace else namespace
                self._flatten(entry.routes, prefix + entry.prefix, ns)
            else:
                full = Route(prefix + entry.pattern, entry.view,
                             name=entry.name)
                qual = None
                if entry.name:
                    qual = (f"{namespace}:{entry.name}"
                            if namespace else entry.name)
                self.routes.append((full, qual))

    def resolve(self, request_path):
        """Return ``(view, kwargs)`` for a path or raise :class:`Http404`."""
        route, _, kwargs = self.resolve_route(request_path)
        return route.view, kwargs

    def resolve_route(self, request_path):
        """Return ``(route, qualified_name, kwargs)`` for a path.

        The qualified name (or, for anonymous routes, the pattern) is
        what request metrics label by — a bounded route cardinality where
        raw paths would explode the label space.
        """
        path_ = request_path.lstrip("/")
        for route, qualname in self.routes:
            kwargs = route.match(path_)
            if kwargs is not None:
                return route, qualname or route.pattern, kwargs
        raise Http404(f"No URL pattern matches {request_path!r}")

    def reverse(self, name, **kwargs):
        try:
            route = self._by_name[name]
        except KeyError:
            raise ValueError(f"No URL pattern named {name!r}")
        return "/" + route.reverse_path(**kwargs)
