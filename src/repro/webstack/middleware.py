"""Reusable middleware.

:class:`SSLRequiredMiddleware` implements the portal's §4.2 posture:
"AMP uses Django's SSL authentication and session management support to
ensure that all activities performed by registered users is encrypted."
Anonymous browsing of public pages over plain HTTP is permitted, but any
request that carries (or would establish) a session is redirected to the
HTTPS origin, and session cookies are only ever set with the Secure flag
over HTTPS.
"""

from __future__ import annotations

from .http import HttpResponseRedirect


class SSLRequiredMiddleware:
    """Redirect session-bearing or auth-area requests to HTTPS.

    Parameters
    ----------
    protected_prefixes:
        Path prefixes that always require HTTPS (the auth and
        submission areas).  Defaults cover the AMP portal layout.
    """

    def __init__(self, protected_prefixes=("/accounts/", "/submit/",
                                           "/admin/")):
        self.protected_prefixes = tuple(protected_prefixes)

    def _needs_ssl(self, request):
        if request.COOKIES.get("sessionid"):
            return True       # an established session must stay encrypted
        return any(request.path.startswith(prefix)
                   for prefix in self.protected_prefixes)

    def process_request(self, request):
        if request.is_secure or not self._needs_ssl(request):
            return None
        secure_url = f"https://{request.get_host()}{request.path}"
        query = request.META.get("QUERY_STRING")
        if query:
            secure_url += f"?{query}"
        response = HttpResponseRedirect(secure_url)
        response.status_code = 301   # permanent: clients should learn
        return response
