"""Reusable middleware.

:class:`SSLRequiredMiddleware` implements the portal's §4.2 posture:
"AMP uses Django's SSL authentication and session management support to
ensure that all activities performed by registered users is encrypted."
Anonymous browsing of public pages over plain HTTP is permitted, but any
request that carries (or would establish) a session is redirected to the
HTTPS origin, and session cookies are only ever set with the Secure flag
over HTTPS.

:class:`ObservabilityMiddleware` is the webstack's instrumentation
boundary: installed first in the pipeline, it records per-route request
counters and latency/DB-round-trip histograms into an
:class:`~repro.obs.Observability` registry.
"""

from __future__ import annotations

from .http import HttpResponseRedirect


class SSLRequiredMiddleware:
    """Redirect session-bearing or auth-area requests to HTTPS.

    Parameters
    ----------
    protected_prefixes:
        Path prefixes that always require HTTPS (the auth and
        submission areas).  Defaults cover the AMP portal layout.
    """

    def __init__(self, protected_prefixes=("/accounts/", "/submit/",
                                           "/admin/")):
        self.protected_prefixes = tuple(protected_prefixes)

    def _needs_ssl(self, request):
        if request.COOKIES.get("sessionid"):
            return True       # an established session must stay encrypted
        return any(request.path.startswith(prefix)
                   for prefix in self.protected_prefixes)

    def process_request(self, request):
        if request.is_secure or not self._needs_ssl(request):
            return None
        secure_url = f"https://{request.get_host()}{request.path}"
        query = request.META.get("QUERY_STRING")
        if query:
            secure_url += f"?{query}"
        response = HttpResponseRedirect(secure_url)
        response.status_code = 301   # permanent: clients should learn
        return response


class ObservabilityMiddleware:
    """Per-route request metrics: count, latency, and query round trips.

    Routes are labelled by resolver name (``request.route_name``), not
    raw path, to keep metric cardinality bounded; requests that never
    reached the resolver (middleware short-circuits, 404s) fall under
    ``<unrouted>``.  Latency reads the injected clock — under the sim
    clock a request that performs no virtual work measures 0.0s, which
    is exactly right for deterministic replay.  Query counts come from
    the connection's ``queries_executed`` counter, the batch layer's
    round-trip budget made continuously visible.

    Parameters
    ----------
    obs:
        The :class:`~repro.obs.Observability` facade.
    db:
        Optional role-scoped :class:`~repro.webstack.orm.Database` whose
        query counter the per-request histogram reads.
    """

    def __init__(self, obs, db=None):
        self.obs = obs
        self.db = db

    @staticmethod
    def resolve_route(request):
        """Stamp ``request.route_name`` (and cache the full match) now,
        before any later middleware can short-circuit.

        Without this, responses produced by middleware — SSL redirects,
        rate-limit 429s, cache hits — never reach the URL resolver and
        every route's latency collapses into one ``<unrouted>`` bucket.
        The resolved triple is cached on the request so the application
        dispatch reuses it instead of resolving twice.
        """
        from .http import Http404
        app = getattr(request, "app", None)
        if app is None or getattr(request, "_route_match", None):
            return
        try:
            match = app.resolver.resolve_route(request.path)
        except Http404:
            return
        request._route_match = match
        request.route_name = match[1]

    def process_request(self, request):
        request._obs_started_at = self.obs.clock.now
        if self.db is not None:
            request._obs_queries_before = self.db.queries_executed
        self.resolve_route(request)
        return None

    def process_response(self, request, response):
        from ..obs.registry import QUERY_COUNT_BUCKETS
        route = getattr(request, "route_name", None) or "<unrouted>"
        status = str(response.status_code)
        metrics = self.obs.metrics
        metrics.counter(
            "http_requests_total",
            help="Requests by route and status").labels(
            route=route, status=status).inc()
        started = getattr(request, "_obs_started_at", None)
        if started is not None:
            metrics.histogram(
                "http_request_seconds",
                help="Request latency (virtual seconds)").labels(
                route=route).observe(self.obs.clock.now - started)
        queries_before = getattr(request, "_obs_queries_before", None)
        if queries_before is not None:
            metrics.histogram(
                "http_request_queries",
                help="Database round trips per request",
                buckets=QUERY_COUNT_BUCKETS).labels(
                route=route).observe(
                self.db.queries_executed - queries_before)
        return response
