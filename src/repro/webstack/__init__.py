"""webstack — a from-scratch Django-style web framework.

This package is the reproduction's stand-in for the Django framework the
AMP paper built on (Django itself is unavailable in this environment; see
DESIGN.md §2).  It provides the pieces the paper exercises:

- a SQLite-backed ORM with strictly-typed fields, lazy QuerySets, and
  role-scoped connections with table grants (``webstack.orm``),
- HTTP request/response objects, URL routing, a template engine with
  inheritance and autoescaping, declarative forms,
- the auth framework (users, PBKDF2 hashing, sessions, login),
- an auto-generated admin interface,
- a WSGI-callable :class:`~repro.webstack.application.WebApplication`
  plus an in-process test client and a development server.

Crucially — and this is the paper's architectural point — the ORM and
models work identically *outside* any web context, so the GridAMP daemon
imports the very same model definitions the portal serves.
"""

from . import admin, auth, forms, orm, signals, templates
from .application import WebApplication, render
from .pagination import (CursorPage, CursorPaginator, EmptyPage,
                         InvalidCursor, Page, Paginator)
from .http import (Http404, HttpRequest, HttpResponse,
                   HttpResponseBadRequest, HttpResponseForbidden,
                   HttpResponseNotAllowed, HttpResponseNotFound,
                   HttpResponseRedirect, HttpResponseServerError,
                   JsonResponse)
from .testclient import Client
from .urls import URLResolver, include, path

__all__ = [
    "Client", "Http404", "HttpRequest", "HttpResponse",
    "HttpResponseBadRequest", "HttpResponseForbidden",
    "HttpResponseNotAllowed", "HttpResponseNotFound",
    "HttpResponseRedirect", "HttpResponseServerError", "JsonResponse",
    "CursorPage", "CursorPaginator", "EmptyPage", "InvalidCursor",
    "Page", "Paginator", "URLResolver", "WebApplication",
    "admin", "auth", "forms", "include", "orm", "path", "render",
    "signals", "templates",
]
