"""Pagination for list views (Django's Paginator equivalent).

Works with QuerySets (sliced lazily — one COUNT plus one LIMIT/OFFSET
query per page) and with plain sequences.
"""

from __future__ import annotations

import math


class EmptyPage(Exception):
    pass


class Page:
    def __init__(self, objects, number, paginator):
        self.object_list = list(objects)
        self.number = number
        self.paginator = paginator

    def __iter__(self):
        return iter(self.object_list)

    def __len__(self):
        return len(self.object_list)

    @property
    def has_next(self):
        return self.number < self.paginator.num_pages

    @property
    def has_previous(self):
        return self.number > 1

    @property
    def next_page_number(self):
        return self.number + 1

    @property
    def previous_page_number(self):
        return self.number - 1

    @property
    def start_index(self):
        """1-based index of the first object on this page."""
        if self.paginator.count == 0:
            return 0
        return (self.number - 1) * self.paginator.per_page + 1

    @property
    def end_index(self):
        return self.start_index + len(self.object_list) - 1


class Paginator:
    def __init__(self, object_list, per_page):
        if per_page < 1:
            raise ValueError("per_page must be >= 1")
        self.object_list = object_list
        self.per_page = int(per_page)

    @property
    def count(self):
        if hasattr(self.object_list, "count") \
                and not isinstance(self.object_list, (list, tuple)):
            return self.object_list.count()
        return len(self.object_list)

    @property
    def num_pages(self):
        return max(1, math.ceil(self.count / self.per_page))

    def page(self, number):
        try:
            number = int(number)
        except (TypeError, ValueError):
            raise EmptyPage(f"Page number {number!r} is not an integer")
        if number < 1 or number > self.num_pages:
            raise EmptyPage(
                f"Page {number} out of range 1..{self.num_pages}")
        start = (number - 1) * self.per_page
        return Page(self.object_list[start:start + self.per_page],
                    number, self)

    def get_page(self, number):
        """Forgiving variant: clamps bad input to a valid page."""
        try:
            return self.page(number)
        except EmptyPage:
            try:
                number = int(number)
            except (TypeError, ValueError):
                return self.page(1)
            return self.page(min(max(number, 1), self.num_pages))
