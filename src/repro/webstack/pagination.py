"""Pagination for list views (Django's Paginator equivalent).

Works with QuerySets (sliced lazily — one COUNT plus one LIMIT/OFFSET
query per page) and with plain sequences.

:class:`CursorPaginator` is the API-facing variant: keyset pagination
over the primary key, so deep pages cost one indexed range scan instead
of an OFFSET walk, and a client paging through a live table never sees
a row twice when earlier rows are inserted or deleted mid-walk.
"""

from __future__ import annotations

import base64
import binascii
import math


class EmptyPage(Exception):
    pass


class Page:
    def __init__(self, objects, number, paginator):
        self.object_list = list(objects)
        self.number = number
        self.paginator = paginator

    def __iter__(self):
        return iter(self.object_list)

    def __len__(self):
        return len(self.object_list)

    @property
    def has_next(self):
        return self.number < self.paginator.num_pages

    @property
    def has_previous(self):
        return self.number > 1

    @property
    def next_page_number(self):
        return self.number + 1

    @property
    def previous_page_number(self):
        return self.number - 1

    @property
    def start_index(self):
        """1-based index of the first object on this page."""
        if self.paginator.count == 0:
            return 0
        return (self.number - 1) * self.paginator.per_page + 1

    @property
    def end_index(self):
        return self.start_index + len(self.object_list) - 1


class Paginator:
    def __init__(self, object_list, per_page):
        if per_page < 1:
            raise ValueError("per_page must be >= 1")
        self.object_list = object_list
        self.per_page = int(per_page)

    @property
    def count(self):
        if hasattr(self.object_list, "count") \
                and not isinstance(self.object_list, (list, tuple)):
            return self.object_list.count()
        return len(self.object_list)

    @property
    def num_pages(self):
        return max(1, math.ceil(self.count / self.per_page))

    def page(self, number):
        try:
            number = int(number)
        except (TypeError, ValueError):
            raise EmptyPage(f"Page number {number!r} is not an integer")
        if number < 1 or number > self.num_pages:
            raise EmptyPage(
                f"Page {number} out of range 1..{self.num_pages}")
        start = (number - 1) * self.per_page
        return Page(self.object_list[start:start + self.per_page],
                    number, self)

    def get_page(self, number):
        """Forgiving variant: clamps bad input to a valid page."""
        try:
            return self.page(number)
        except EmptyPage:
            try:
                number = int(number)
            except (TypeError, ValueError):
                return self.page(1)
            return self.page(min(max(number, 1), self.num_pages))


class InvalidCursor(Exception):
    """The client supplied a cursor we did not mint (or it was mangled
    in transit).  API views turn this into a plain-language 400."""


class CursorPage:
    """One keyset page: the objects plus the opaque continuation token."""

    def __init__(self, objects, next_cursor):
        self.object_list = list(objects)
        self.next_cursor = next_cursor

    def __iter__(self):
        return iter(self.object_list)

    def __len__(self):
        return len(self.object_list)

    @property
    def has_next(self):
        return self.next_cursor is not None


class CursorPaginator:
    """Keyset (cursor) pagination over a QuerySet's primary key.

    Pages are ordered by descending pk (newest first — the natural feed
    order for an append-mostly table).  The cursor is an opaque token
    encoding the last pk the client saw; the next page is everything
    strictly older.  One LIMIT'ed indexed query per page, no COUNT.

    Parameters
    ----------
    queryset:
        Base QuerySet; any filters should already be applied.  The
        paginator imposes its own ordering.
    per_page:
        Page size; also the ceiling for client-requested sizes.
    """

    def __init__(self, queryset, per_page=50):
        if per_page < 1:
            raise ValueError("per_page must be >= 1")
        self.queryset = queryset
        self.per_page = int(per_page)

    @staticmethod
    def encode_cursor(pk):
        raw = f"pk:{int(pk)}".encode("ascii")
        return base64.urlsafe_b64encode(raw).decode("ascii")

    @staticmethod
    def decode_cursor(token):
        try:
            raw = base64.urlsafe_b64decode(token.encode("ascii"))
            tag, _, value = raw.decode("ascii").partition(":")
            if tag != "pk":
                raise ValueError(tag)
            return int(value)
        except (ValueError, UnicodeError, binascii.Error):
            raise InvalidCursor(
                "The page marker is not one this service issued. "
                "Request the first page again without a marker.")

    def page(self, cursor=None, limit=None):
        """Return the :class:`CursorPage` after *cursor* (None = first)."""
        size = self.per_page if limit is None \
            else max(1, min(int(limit), self.per_page))
        qs = self.queryset.order_by("-pk")
        if cursor is not None:
            qs = qs.filter(pk__lt=self.decode_cursor(cursor))
        # Fetch one extra row: its presence proves there is a next page
        # without a COUNT.
        rows = list(qs[:size + 1])
        has_more = len(rows) > size
        rows = rows[:size]
        next_cursor = self.encode_cursor(rows[-1].pk) \
            if has_more and rows else None
        return CursorPage(rows, next_cursor)
