"""The web application object: middleware pipeline + URL dispatch + WSGI.

A :class:`WebApplication` is the webstack's "project": it owns the URL
resolver, the template engine, an ordered middleware list, and the
database connection its views use.  It is callable as a WSGI app and
drivable in-process by the test client — no socket required, which is how
the integration tests exercise the full portal.
"""

from __future__ import annotations

import traceback

from .http import (Http404, HttpRequest, HttpResponse,
                   HttpResponseNotFound, HttpResponseServerError)
from .orm.exceptions import DatabaseUnavailable, DeadlineExceeded
from .signals import request_finished, request_started
from .templates import Context, Engine
from .urls import URLResolver


class WebApplication:
    """A routable, middleware-wrapped web application.

    Parameters
    ----------
    urlpatterns:
        List of :func:`~repro.webstack.urls.path` /
        :func:`~repro.webstack.urls.include` entries.
    engine:
        Template :class:`~repro.webstack.templates.Engine`; the app wires
        its URL resolver into the engine so ``{% url %}`` works.
    middleware:
        Objects with optional ``process_request(request)`` and
        ``process_response(request, response)`` methods, applied in order
        (and reverse order for responses).
    db:
        The role-scoped database views should use; exposed as
        ``request.db``.
    debug:
        When True, unhandled exceptions render a traceback page; when
        False, a generic 500 (production posture).
    """

    def __init__(self, urlpatterns, *, engine=None, middleware=(),
                 db=None, debug=False, context_processors=()):
        self.resolver = URLResolver(urlpatterns)
        self.engine = engine or Engine()
        self.engine.url_resolver = self.resolver
        self.middleware = list(middleware)
        self.db = db
        self.debug = debug
        self.context_processors = list(context_processors)

    # ------------------------------------------------------------------
    def handle(self, request):
        """Process one :class:`HttpRequest` into an :class:`HttpResponse`."""
        request.app = self
        request.db = self.db
        request_started.send(self, request=request)
        try:
            response = self._handle_inner(request)
        except Exception as exc:  # noqa: BLE001 - the framework boundary
            response = self._response_for_exception(request, exc)
        for mw in reversed(self.middleware):
            if hasattr(mw, "process_response"):
                # A response-phase failure (say, a session save against
                # a database that just went down) must not abort the
                # rest of the chain: the outer middleware still has to
                # run — the admission gate releases its in-flight
                # ticket here, and a skipped release would permanently
                # shrink the worker's capacity.
                try:
                    response = mw.process_response(request, response)
                except Exception as exc:  # noqa: BLE001
                    response = self._response_for_exception(request, exc)
        request_finished.send(self, request=request, response=response)
        return response

    def _response_for_exception(self, request, exc):
        """Convert an exception from a view or middleware into the
        user-facing error response (called from an ``except`` block)."""
        if isinstance(exc, Http404):
            return self._error_response(
                HttpResponseNotFound, "404 Not Found", str(exc))
        if isinstance(exc, DeadlineExceeded):
            # An over-budget request: stop working on it and say so in
            # plain language instead of holding the worker.  The serving
            # tier's deadline middleware counts these and rewrites the
            # body for API clients.
            request.deadline_exceeded = True
            return HttpResponse(
                ("<html><body><h1>This page took too long</h1>"
                 "<p>Building this page took longer than the time "
                 "available for one request. Please try again; if this "
                 "keeps happening, the site is likely under heavy "
                 "load.</p></body></html>"), status=504)
        if isinstance(exc, DatabaseUnavailable):
            # The database did not answer.  The cache middleware may
            # still replace this with a recent saved copy of the page.
            request.database_unavailable = True
            response = HttpResponse(
                ("<html><body><h1>Please try again shortly</h1>"
                 "<p>The information this page needs is temporarily "
                 "unavailable. Nothing you submitted has been lost. "
                 "Please try again in a moment.</p></body></html>"),
                status=503)
            response["Retry-After"] = "15"
            return response
        if self.debug:
            detail = traceback.format_exc()
        else:
            detail = "An internal error occurred."
        return self._error_response(
            HttpResponseServerError, "500 Server Error", detail)

    def _handle_inner(self, request):
        for mw in self.middleware:
            if hasattr(mw, "process_request"):
                short_circuit = mw.process_request(request)
                if short_circuit is not None:
                    return short_circuit
        match = getattr(request, "_route_match", None)
        if match is None:   # no middleware resolved it eagerly
            match = self.resolver.resolve_route(request.path)
        route, route_name, kwargs = match
        request.resolver_kwargs = kwargs
        request.route_name = route_name
        view = route.view
        response = view(request, **kwargs)
        if not isinstance(response, HttpResponse):
            raise TypeError(
                f"View {getattr(view, '__name__', view)!r} returned "
                f"{type(response).__name__}, not HttpResponse")
        return response

    @staticmethod
    def _error_response(cls, title, detail):
        body = (f"<html><head><title>{title}</title></head>"
                f"<body><h1>{title}</h1><pre>{detail}</pre></body></html>")
        return cls(body.encode("utf-8"))

    # ------------------------------------------------------------------
    def render(self, request, template_name, data=None, status=200):
        """Shortcut used by views: render a template to a response."""
        context_data = {}
        for processor in self.context_processors:
            context_data.update(processor(request))
        context_data.update(data or {})
        context_data.setdefault("request", request)
        context_data.setdefault("user", getattr(request, "user", None))
        context = Context(context_data)
        content = self.engine.get_template(template_name).render(
            context=context)
        return HttpResponse(content, status=status)

    def reverse(self, name, **kwargs):
        return self.resolver.reverse(name, **kwargs)

    # -- WSGI ------------------------------------------------------------
    def __call__(self, environ, start_response):
        request = HttpRequest(environ)
        response = self.handle(request)
        status = f"{response.status_code} {response.reason_phrase}"
        start_response(status, response.wsgi_headers())
        return [response.content]


def render(request, template_name, data=None, status=200):
    """Module-level render shortcut (requires ``request.app``)."""
    return request.app.render(request, template_name, data, status=status)
