"""Development WSGI server (wsgiref-based).

The paper notes Django's "self-contained development environment was easy
to install and facilitated quick prototyping and debugging"; this module
is that piece.  Production deployments in the paper sat behind Apache —
any WSGI container can host :class:`WebApplication` the same way.
"""

from __future__ import annotations

import threading
from wsgiref.simple_server import WSGIRequestHandler, make_server


class _QuietHandler(WSGIRequestHandler):
    def log_message(self, format, *args):  # noqa: A002 - wsgiref API
        pass


class DevServer:
    """Serve a WSGI app on localhost, optionally in a background thread."""

    def __init__(self, app, host="127.0.0.1", port=0):
        self.app = app
        self.httpd = make_server(host, port, app,
                                 handler_class=_QuietHandler)
        self.host = host
        self.port = self.httpd.server_address[1]
        self._thread = None

    @property
    def url(self):
        return f"http://{self.host}:{self.port}"

    def start_background(self):
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        daemon=True)
        self._thread.start()
        return self

    def serve_forever(self):  # pragma: no cover - interactive use
        self.httpd.serve_forever()

    def stop(self):
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)


def run_dev_server(app, host="127.0.0.1", port=8000):  # pragma: no cover
    """Blocking convenience entry point."""
    server = DevServer(app, host, port)
    print(f"webstack dev server on {server.url} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
