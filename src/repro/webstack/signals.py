"""Minimal signal dispatch (Django's ``django.dispatch`` equivalent).

AMP uses signals for decoupled bookkeeping — e.g. stamping provenance
metadata when auth users are created, and letting the notification layer
observe workflow state transitions without the workflow importing it.
"""

from __future__ import annotations


class Signal:
    """A named event with connected receivers.

    Receivers are called synchronously in connection order with
    ``(sender, **kwargs)``.  ``send`` collects ``(receiver, result)``
    pairs; exceptions propagate (use ``send_robust`` to capture them).
    """

    def __init__(self, name=""):
        self.name = name
        self._receivers = []

    def connect(self, receiver, sender=None):
        self._receivers.append((receiver, sender))
        return receiver

    def disconnect(self, receiver):
        self._receivers = [(r, s) for r, s in self._receivers
                           if r is not receiver]

    def send(self, sender, **kwargs):
        responses = []
        for receiver, wanted in list(self._receivers):
            if wanted is not None and wanted is not sender \
                    and wanted != type(sender):
                continue
            responses.append((receiver, receiver(sender, **kwargs)))
        return responses

    def send_robust(self, sender, **kwargs):
        responses = []
        for receiver, wanted in list(self._receivers):
            if wanted is not None and wanted is not sender \
                    and wanted != type(sender):
                continue
            try:
                responses.append((receiver, receiver(sender, **kwargs)))
            except Exception as exc:  # noqa: BLE001 - by design
                responses.append((receiver, exc))
        return responses

    def receiver_count(self):
        return len(self._receivers)


# Framework-level signals.
#
# ``post_save`` and ``post_delete`` are sent by the ORM on every
# mutation path — ``Model.save``/``Model.delete`` with the instance,
# and the set-oriented ``QuerySet`` writes (``update``, ``delete``,
# ``bulk_create``, ``bulk_update``) with ``instances`` where the rows
# are in hand and ``instance=None`` otherwise.  The serving tier's
# cache invalidation hangs off these; with no receivers connected the
# send is a no-op over an empty list.
pre_save = Signal("pre_save")
post_save = Signal("post_save")
post_delete = Signal("post_delete")
request_started = Signal("request_started")
request_finished = Signal("request_finished")
user_logged_in = Signal("user_logged_in")
user_logged_out = Signal("user_logged_out")
