"""Helpers for the portal's JSON campaign API.

The machinery lives here, framework-adjacent and model-free: request
parsing, the plain-language error body convention, and parameter-sweep
expansion/validation.  The portal's API application
(:mod:`repro.core.portal.apps.api`) supplies the models and bounds.

Error convention — every non-2xx body is::

    {"error": {"message": <one plain sentence>,
               "fields": {<field>: [<plain sentences>], ...}}}

No grid, ORM, or HTTP jargon in any message; the reader is an
astronomer with a script, not a gateway operator.
"""

from __future__ import annotations

import json


class ApiError(Exception):
    """Raised by API helpers; the view turns it into a JSON response."""

    def __init__(self, status, message, fields=None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.fields = dict(fields or {})


def error_response(status, message, fields=None):
    from ..webstack.http import JsonResponse
    body = {"error": {"message": message}}
    if fields:
        body["error"]["fields"] = {name: list(messages)
                                   for name, messages in fields.items()}
    return JsonResponse(body, status=status)


def parse_json_body(request, *, max_bytes=1_000_000):
    """The request body as a dict, or an :class:`ApiError` explaining
    exactly what to fix."""
    body = request.body
    if len(body) > max_bytes:
        raise ApiError(400, "The request body is too large for this "
                            "service. Split the campaign into smaller "
                            "requests.")
    if not body:
        raise ApiError(400, "The request body is empty. Send a JSON "
                            "object describing the campaign.")
    try:
        data = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        raise ApiError(400, "The request body is not valid JSON.")
    if not isinstance(data, dict):
        raise ApiError(400, "The request body must be a JSON object.")
    return data


# ----------------------------------------------------------------------
# Parameter sweeps
# ----------------------------------------------------------------------

def _expand_axis(name, spec, low, high, errors, max_values=5000):
    """One sweep axis -> sorted list of float values (or record errors).

    Accepted shapes: a single number, a list of numbers, or a range
    object ``{"start": a, "stop": b, "step": s}`` (inclusive of *stop*
    when it lands on the grid).  Range expansion is bounded *during*
    the loop: a tiny step inside the physics bounds must be rejected
    after ``max_values`` iterations, not expanded in full first — an
    unbounded loop here would let one request pin a worker's CPU.
    """
    field = f"sweep.{name}"

    def bad(message):
        errors.setdefault(field, []).append(message)
        return None

    if isinstance(spec, bool):
        return bad("This value must be a number, a list of numbers, or "
                   "a start/stop/step range.")
    if isinstance(spec, (int, float)):
        values = [float(spec)]
    elif isinstance(spec, list):
        if not spec:
            return bad("The list of values is empty.")
        if not all(isinstance(v, (int, float))
                   and not isinstance(v, bool) for v in spec):
            return bad("Every value in the list must be a number.")
        values = [float(v) for v in spec]
    elif isinstance(spec, dict):
        unknown = set(spec) - {"start", "stop", "step"}
        if unknown:
            return bad("A range is described by start, stop, and step "
                       f"only (found: {', '.join(sorted(unknown))}).")
        try:
            start = float(spec["start"])
            stop = float(spec["stop"])
            step = float(spec["step"])
        except (KeyError, TypeError, ValueError):
            return bad("A range needs numeric start, stop, and step "
                       "values.")
        if step <= 0:
            return bad("The step must be greater than zero.")
        if stop < start:
            return bad(f"The range is inverted: start ({start:g}) is "
                       f"greater than stop ({stop:g}).")
        values, k = [], 0
        # Half-step tolerance so stop is included when it lands on the
        # grid despite float rounding.
        while start + k * step <= stop + step * 1e-9:
            if len(values) >= max_values:
                return bad(
                    f"This range expands to more than {max_values} "
                    f"values; the most one campaign may submit is "
                    f"{max_values} simulations. Use a larger step or "
                    "split it into smaller campaigns.")
            values.append(round(start + k * step, 12))
            k += 1
    else:
        return bad("This value must be a number, a list of numbers, or "
                   "a start/stop/step range.")

    out_of_bounds = [v for v in values if v < low or v > high]
    if out_of_bounds:
        return bad(f"Value {out_of_bounds[0]:g} is outside the allowed "
                   f"range {low:g} to {high:g}.")
    return values


def expand_sweep(sweep, bounds, *, max_points=5000):
    """Expand a sweep spec into the full parameter grid.

    Parameters
    ----------
    sweep:
        ``{parameter: axis-spec}`` — every parameter in *bounds* must
        appear, no others.
    bounds:
        ``{parameter: (low, high)}`` in canonical order.
    max_points:
        Ceiling on the grid size (one simulation per point).

    Returns ``(points, errors)``: *points* is a list of
    ``{parameter: value}`` dicts in deterministic order, *errors* maps
    field names to plain-language messages.  A non-empty *errors*
    means the whole sweep is rejected — no partial grid.
    """
    errors = {}
    if not isinstance(sweep, dict):
        return [], {"sweep": ["Describe the sweep as a JSON object "
                              "with one entry per parameter."]}
    names = list(bounds)
    for name in sweep:
        if name not in bounds:
            errors.setdefault(f"sweep.{name}", []).append(
                "This is not a parameter of the stellar model. "
                f"Expected: {', '.join(names)}.")
    axes = {}
    for name in names:
        if name not in sweep:
            errors.setdefault(f"sweep.{name}", []).append(
                "This parameter is required (use a single number to "
                "hold it fixed).")
            continue
        low, high = bounds[name]
        values = _expand_axis(name, sweep[name], low, high, errors,
                              max_values=max_points)
        if values is not None:
            axes[name] = values
    if errors:
        return [], errors
    total = 1
    for name in names:
        total *= len(axes[name])
    if total > max_points:
        return [], {"sweep": [
            f"This sweep expands to {total} simulations; the most one "
            f"campaign may submit is {max_points}. Split it into "
            "smaller campaigns."]}
    points = [{}]
    for name in names:
        points = [{**point, name: value}
                  for point in points for value in axes[name]]
    return points, {}
