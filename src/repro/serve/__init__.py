"""repro.serve — the portal's production serving tier.

What the paper left to "Apache + mod_python on a departmental server",
grown into a real subsystem (see DESIGN.md §10):

- :mod:`repro.serve.workers` — a prefork multi-worker WSGI runner:
  one listening socket, N forked worker processes with their own
  per-role database connections, a supervisor that respawns dead
  workers (with crash-loop backoff), per-request watchdogs, and
  graceful drain on shutdown;
- :mod:`repro.serve.cache` — a read-through response cache (per-worker
  L1 LRU over a shared store) with per-route TTLs, *targeted* write
  invalidation driven by the ORM's post-save/post-delete signals, and
  a stale-grace window for brownout serving;
- :mod:`repro.serve.ratelimit` — per-route token buckets returning
  plain-language 429s with ``Retry-After``;
- :mod:`repro.serve.admission` — per-worker admission control (shed
  excess load *before* any database work, by priority class) and
  per-request deadlines enforced at the connection layer;
- :mod:`repro.serve.health` — database health tracking, brownout
  degradation, fault injection, and the ``/healthz``/``/readyz``
  probe endpoints;
- :mod:`repro.serve.api` — helpers for the JSON campaign API (error
  bodies, parameter-sweep validation/expansion).

:class:`ServeConfig` bundles the knobs; ``build_portal_app(...,
serve=ServeConfig())`` (or ``serve=True`` for defaults) assembles the
tier in front of the existing portal application.
"""

from __future__ import annotations

from .admission import (AdmissionController, AdmissionMiddleware,
                        AdmissionPolicy, DEFAULT_ROUTE_CLASSES,
                        DeadlineMiddleware, DeadlinePolicy,
                        DeadlineScopeMiddleware, PRIORITY_BULK,
                        PRIORITY_CRITICAL, PRIORITY_INTERACTIVE)
from .cache import (CacheMiddleware, CacheRule, DEFAULT_CACHE_RULES,
                    EXEMPT_ROUTES, InMemorySharedStore, PortalCache,
                    SqliteSharedStore)
from .health import (BrownoutMiddleware, DEFAULT_BROWNOUT_ROUTES,
                     DbFaultInjector, HealthTracker, build_health_routes)
from .ratelimit import (DEFAULT_POLICY, DEFAULT_RATE_POLICIES,
                        RateLimiter, RateLimitMiddleware, RatePolicy)
from .workers import (PreforkServer, WATCHDOG_EXIT, mark_worker_process)

__all__ = [
    "AdmissionController", "AdmissionMiddleware", "AdmissionPolicy",
    "BrownoutMiddleware", "CacheMiddleware", "CacheRule",
    "DEFAULT_BROWNOUT_ROUTES", "DEFAULT_CACHE_RULES", "DEFAULT_POLICY",
    "DEFAULT_RATE_POLICIES", "DEFAULT_ROUTE_CLASSES", "DbFaultInjector",
    "DeadlineMiddleware", "DeadlinePolicy", "DeadlineScopeMiddleware",
    "EXEMPT_ROUTES", "HealthTracker", "InMemorySharedStore",
    "PRIORITY_BULK", "PRIORITY_CRITICAL", "PRIORITY_INTERACTIVE",
    "PortalCache", "PreforkServer", "RateLimiter",
    "RateLimitMiddleware", "RatePolicy", "ServeConfig",
    "SqliteSharedStore", "WATCHDOG_EXIT", "WallClock",
    "build_health_routes", "mark_worker_process",
]


class WallClock:
    """Wall-time stand-in for deployments without a virtual clock
    (the prefork runner serving real HTTP)."""

    @property
    def now(self):
        import time
        return time.monotonic()


class ServeConfig:
    """Configuration for one serving-tier assembly.

    Parameters
    ----------
    cache:
        Enable the read-through response cache.
    ratelimit:
        Enable per-route token-bucket limiting.
    admission:
        Enable per-worker admission control (shed load beyond the
        concurrency limit with fast 503s, by priority class).
    deadlines:
        Enable per-request time budgets enforced at the database
        connection layer (504 once a request's budget is spent).
    health:
        Enable database health tracking, brownout degradation, stale
        cache serving while degraded, and the ``/healthz``/``/readyz``
        endpoints.
    clock:
        Clock the cache TTLs and rate-limit buckets are measured
        against.  ``None`` inherits the deployment's virtual clock
        (tests and benches advance it explicitly), falling back to
        :class:`WallClock`.  Real-HTTP serving — the prefork runner —
        must pass a :class:`WallClock`: a deployment's
        :class:`~repro.hpc.simclock.SimClock` never advances on its
        own, so under it token buckets would never refill and cached
        entries would never expire.
    cache_rules / rate_policies:
        Overrides for the per-route defaults (None = defaults).
    admission_policy / route_classes / deadline_policy:
        Overrides for the admission and deadline defaults.
    brownout_routes:
        Routes the brownout page covers while degraded (None =
        :data:`~repro.serve.health.DEFAULT_BROWNOUT_ROUTES`).
    db_fault:
        Optional ``callable(operation, table)`` installed behind the
        health tracker's fault hook — the chaos/test injection point
        (see :class:`~repro.serve.health.DbFaultInjector`).
    stale_grace_s:
        Seconds past expiry a cached page stays servable as *stale*
        (brownout raw material; 0 disables stale retention).
    health_window / health_error_threshold / health_min_samples /
    health_recovery_s / health_slow_statement_s:
        Sliding-window shape for the degradation detector (None =
        :class:`~repro.serve.health.HealthTracker` defaults).
    shared_store:
        Cross-worker cache store (None = in-memory, per-process).
    l1_capacity:
        Per-worker L1 LRU size.
    worker_index:
        This process's worker number, stamped on the
        ``serve_worker_up`` gauge (the in-process tier is worker 0).
    """

    def __init__(self, *, cache=True, ratelimit=True, admission=True,
                 deadlines=True, health=True, clock=None,
                 cache_rules=None, rate_policies=None, rate_default=None,
                 admission_policy=None, route_classes=None,
                 deadline_policy=None, brownout_routes=None,
                 db_fault=None, stale_grace_s=300.0, health_window=None,
                 health_error_threshold=None, health_min_samples=None,
                 health_recovery_s=None, health_slow_statement_s=None,
                 shared_store=None, l1_capacity=256, worker_index=0):
        self.cache = cache
        self.ratelimit = ratelimit
        self.admission = admission
        self.deadlines = deadlines
        self.health = health
        self.clock = clock
        self.cache_rules = cache_rules
        self.rate_policies = rate_policies
        self.rate_default = rate_default
        self.admission_policy = admission_policy
        self.route_classes = route_classes
        self.deadline_policy = deadline_policy
        self.brownout_routes = brownout_routes
        self.db_fault = db_fault
        self.stale_grace_s = stale_grace_s
        self.health_window = health_window
        self.health_error_threshold = health_error_threshold
        self.health_min_samples = health_min_samples
        self.health_recovery_s = health_recovery_s
        self.health_slow_statement_s = health_slow_statement_s
        self.shared_store = shared_store
        self.l1_capacity = l1_capacity
        self.worker_index = worker_index
