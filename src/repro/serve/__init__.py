"""repro.serve — the portal's production serving tier.

What the paper left to "Apache + mod_python on a departmental server",
grown into a real subsystem (see DESIGN.md §10):

- :mod:`repro.serve.workers` — a prefork multi-worker WSGI runner:
  one listening socket, N forked worker processes with their own
  per-role database connections, a supervisor that respawns dead
  workers, and graceful drain on shutdown;
- :mod:`repro.serve.cache` — a read-through response cache (per-worker
  L1 LRU over a shared store) with per-route TTLs and *targeted*
  write invalidation driven by the ORM's post-save/post-delete
  signals, so results pages never serve a stale state transition;
- :mod:`repro.serve.ratelimit` — per-route token buckets returning
  plain-language 429s with ``Retry-After``;
- :mod:`repro.serve.api` — helpers for the JSON campaign API (error
  bodies, parameter-sweep validation/expansion).

:class:`ServeConfig` bundles the knobs; ``build_portal_app(...,
serve=ServeConfig())`` (or ``serve=True`` for defaults) assembles the
tier in front of the existing portal application.
"""

from __future__ import annotations

from .cache import (CacheMiddleware, CacheRule, DEFAULT_CACHE_RULES,
                    InMemorySharedStore, PortalCache, SqliteSharedStore)
from .ratelimit import (DEFAULT_POLICY, DEFAULT_RATE_POLICIES,
                        RateLimiter, RateLimitMiddleware, RatePolicy)
from .workers import PreforkServer, mark_worker_process

__all__ = [
    "CacheMiddleware", "CacheRule", "DEFAULT_CACHE_RULES",
    "DEFAULT_POLICY", "DEFAULT_RATE_POLICIES", "InMemorySharedStore",
    "PortalCache", "PreforkServer", "RateLimiter",
    "RateLimitMiddleware", "RatePolicy", "ServeConfig",
    "SqliteSharedStore", "WallClock", "mark_worker_process",
]


class WallClock:
    """Wall-time stand-in for deployments without a virtual clock
    (the prefork runner serving real HTTP)."""

    @property
    def now(self):
        import time
        return time.monotonic()


class ServeConfig:
    """Configuration for one serving-tier assembly.

    Parameters
    ----------
    cache:
        Enable the read-through response cache.
    ratelimit:
        Enable per-route token-bucket limiting.
    clock:
        Clock the cache TTLs and rate-limit buckets are measured
        against.  ``None`` inherits the deployment's virtual clock
        (tests and benches advance it explicitly), falling back to
        :class:`WallClock`.  Real-HTTP serving — the prefork runner —
        must pass a :class:`WallClock`: a deployment's
        :class:`~repro.hpc.simclock.SimClock` never advances on its
        own, so under it token buckets would never refill and cached
        entries would never expire.
    cache_rules / rate_policies:
        Overrides for the per-route defaults (None = defaults).
    shared_store:
        Cross-worker cache store (None = in-memory, per-process).
    l1_capacity:
        Per-worker L1 LRU size.
    worker_index:
        This process's worker number, stamped on the
        ``serve_worker_up`` gauge (the in-process tier is worker 0).
    """

    def __init__(self, *, cache=True, ratelimit=True, clock=None,
                 cache_rules=None, rate_policies=None, rate_default=None,
                 shared_store=None, l1_capacity=256, worker_index=0):
        self.cache = cache
        self.ratelimit = ratelimit
        self.clock = clock
        self.cache_rules = cache_rules
        self.rate_policies = rate_policies
        self.rate_default = rate_default
        self.shared_store = shared_store
        self.l1_capacity = l1_capacity
        self.worker_index = worker_index
