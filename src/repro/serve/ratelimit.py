"""Per-route token-bucket rate limiting for the serving tier.

Each (route, client) pair gets a token bucket: *capacity* tokens,
refilled at *refill_per_s*.  A request costs one token; an empty bucket
yields a 429 with a plain-language body and a ``Retry-After`` header
telling the client exactly how long until a token is available.  Time
comes from the injected clock, so under the sim clock the limiter is
fully deterministic (and twin soak runs stay byte-stable).

Clients are identified by their session cookie when present (one
astronomer = one budget, wherever they connect from) and by remote
address otherwise.
"""

from __future__ import annotations

import math
from collections import OrderedDict


class RatePolicy:
    """Bucket shape for one route (or the default)."""

    __slots__ = ("capacity", "refill_per_s")

    def __init__(self, capacity, refill_per_s):
        if capacity < 1 or refill_per_s <= 0:
            raise ValueError("capacity >= 1 and refill_per_s > 0 required")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)


#: Routes the paper's workload hits hardest get generous browse budgets;
#: the write-heavy campaign endpoint is deliberately tight — one bulk
#: request replaces thousands of form POSTs, so bursts of them are
#: almost certainly a runaway script.
DEFAULT_RATE_POLICIES = {
    "api-campaign-create": RatePolicy(5, 1.0 / 60.0),
    "api-sim-list": RatePolicy(60, 2.0),
    "star-suggest": RatePolicy(120, 10.0),
}

DEFAULT_POLICY = RatePolicy(240, 20.0)


class TokenBucket:
    __slots__ = ("tokens", "updated_at")

    def __init__(self, capacity, now):
        self.tokens = capacity
        self.updated_at = now

    def consume(self, policy, now):
        """Take one token; returns (allowed, seconds-until-next-token)."""
        elapsed = max(0.0, now - self.updated_at)
        self.tokens = min(policy.capacity,
                          self.tokens + elapsed * policy.refill_per_s)
        self.updated_at = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / policy.refill_per_s


class RateLimiter:
    """Token buckets over (route, client), LRU-bounded.

    The bucket table is capped so a scan of spoofed clients cannot grow
    memory without bound; the least-recently-active bucket is dropped
    first (dropping a bucket refills it, which only ever errs in the
    client's favour).
    """

    def __init__(self, clock, *, policies=None, default=None,
                 max_buckets=10_000, obs=None):
        self.clock = clock
        self.policies = dict(DEFAULT_RATE_POLICIES if policies is None
                             else policies)
        self.default = default or DEFAULT_POLICY
        self.max_buckets = int(max_buckets)
        self._buckets = OrderedDict()
        self.obs = obs

    def policy_for(self, route):
        return self.policies.get(route, self.default)

    def check(self, route, client):
        """Returns (allowed, retry_after_seconds)."""
        now = self.clock.now
        policy = self.policy_for(route)
        key = (route, client)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = TokenBucket(policy.capacity, now)
            self._buckets[key] = bucket
        self._buckets.move_to_end(key)
        while len(self._buckets) > self.max_buckets:
            self._buckets.popitem(last=False)
        allowed, retry_after = bucket.consume(policy, now)
        if not allowed and self.obs is not None:
            self.obs.metrics.counter(
                "serve_throttled_total",
                help="Requests refused by the rate limiter, by route"
            ).labels(route=route or "<unrouted>").inc()
            self.obs.events.emit("serve.throttled", route=route,
                                 retry_after_s=round(retry_after, 3))
        return allowed, retry_after


#: Routes never throttled: health probes and metric scrapes must keep
#: answering *especially* while the site is melting down — a throttled
#: probe looks exactly like a dead worker to the thing watching it.
DEFAULT_EXEMPT_ROUTES = frozenset({"metrics", "healthz", "readyz"})


class RateLimitMiddleware:
    """Turn an exhausted bucket into a jargon-free 429."""

    def __init__(self, limiter, *, exempt=None):
        self.limiter = limiter
        self.exempt = frozenset(DEFAULT_EXEMPT_ROUTES if exempt is None
                                else exempt)

    @staticmethod
    def _client(request):
        session = request.COOKIES.get("sessionid")
        if session:
            return f"session:{session}"
        return f"addr:{request.META.get('REMOTE_ADDR', 'unknown')}"

    def process_request(self, request):
        from ..webstack.http import HttpResponse, JsonResponse
        from ..webstack.middleware import ObservabilityMiddleware
        ObservabilityMiddleware.resolve_route(request)
        route = getattr(request, "route_name", None)
        if route in self.exempt:
            return None
        allowed, retry_after = self.limiter.check(
            route, self._client(request))
        if allowed:
            return None
        wait = max(1, math.ceil(retry_after))
        if request.path.startswith("/api/"):
            response = JsonResponse({"error": {
                "message": ("You have sent requests faster than this "
                            "service can accept them. Please wait "
                            f"{wait} seconds and try again."),
                "retry_after_seconds": wait,
            }}, status=429)
        else:
            response = HttpResponse(
                ("<html><body><h1>Please slow down</h1>"
                 "<p>You have loaded pages faster than this site can "
                 f"serve them. Please wait {wait} seconds and try "
                 "again.</p></body></html>"),
                status=429)
        response["Retry-After"] = str(wait)
        return response
