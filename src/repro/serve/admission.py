"""Admission control and request deadlines for the serving tier.

Overload protection happens *before* any database work: the admission
gate decides, from the number of requests already in flight in this
worker, whether one more can be served within a useful time — and sheds
the excess with a fast, plain-language 503 + ``Retry-After`` instead of
letting it queue unboundedly in the kernel backlog.  Shedding is
priority-aware: the supervisor's probes (``/healthz``, ``/readyz``,
``/metrics``) and cheap API reads keep capacity that expensive HTML
renders have already lost, so the tier stays observable and scriptable
while it is saturated.

Every *admitted* request then gets a time budget (server default,
client-overridable via the ``X-Request-Budget-Ms`` header, clamped to a
server-side range).  The deadline is stamped on the request and
enforced at the ORM connection layer: the middleware installs a
``deadline_hook`` on the portal's database connection that raises
:class:`~repro.webstack.orm.exceptions.DeadlineExceeded` once the
budget is spent, so an over-budget request returns a plain-language 504
instead of pinning its worker.  Cache fills inherit the ambient hook —
a read-through fill can never outlive the request that triggered it.

Everything reads the injected clock, so under the sim clock both the
gate and the deadlines are fully deterministic (twin soak runs are
byte-stable).
"""

from __future__ import annotations

import math
import threading

#: Priority classes, best first.  CRITICAL is the supervisor's and the
#: scraper's traffic — it must survive saturation; INTERACTIVE covers
#: cheap JSON/suggest reads; BULK is the expensive HTML renders that
#: overload sheds first.
PRIORITY_CRITICAL = "critical"
PRIORITY_INTERACTIVE = "interactive"
PRIORITY_BULK = "bulk"

#: Route name -> priority class.  Routes not listed default to
#: INTERACTIVE; the expensive HTML renders are enumerated as BULK.
DEFAULT_ROUTE_CLASSES = {
    "metrics": PRIORITY_CRITICAL,
    "healthz": PRIORITY_CRITICAL,
    "readyz": PRIORITY_CRITICAL,
    "api-sim-list": PRIORITY_INTERACTIVE,
    "api-campaign-detail": PRIORITY_INTERACTIVE,
    "star-suggest": PRIORITY_INTERACTIVE,
    "home": PRIORITY_BULK,
    "star-list": PRIORITY_BULK,
    "star-detail": PRIORITY_BULK,
    "sim-list": PRIORITY_BULK,
    "sim-detail": PRIORITY_BULK,
    "sim-hr": PRIORITY_BULK,
    "sim-echelle": PRIORITY_BULK,
    "sim-hr-svg": PRIORITY_BULK,
    "sim-echelle-svg": PRIORITY_BULK,
    "statistics": PRIORITY_BULK,
}


class AdmissionPolicy:
    """Capacity shape for one worker's admission gate.

    Parameters
    ----------
    max_inflight:
        Requests this worker will hold in flight at once (its admitted
        capacity — everything past it is shed, whatever its class).
    shares:
        Fraction of ``max_inflight`` each priority class may use.
        CRITICAL gets the whole capacity; lower classes are cut off
        earlier, which is what reserves headroom for probes and API
        reads under saturation.
    retry_after_s:
        The ``Retry-After`` a shed request of each class is told.
        Deterministic by design (no live estimate): the point is a
        fast, honest "come back soon", not a queueing model.
    degraded_bulk_share:
        Extra multiplier applied to the BULK share while the health
        tracker reports degraded — a browning-out tier admits even
        fewer expensive renders so the capacity it has left goes to
        cheap and critical traffic.
    """

    def __init__(self, *, max_inflight=8,
                 shares=None, retry_after_s=None,
                 degraded_bulk_share=0.5):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = int(max_inflight)
        self.shares = dict(shares or {
            PRIORITY_CRITICAL: 1.0,
            PRIORITY_INTERACTIVE: 0.75,
            PRIORITY_BULK: 0.5,
        })
        self.retry_after_s = dict(retry_after_s or {
            PRIORITY_CRITICAL: 1,
            PRIORITY_INTERACTIVE: 2,
            PRIORITY_BULK: 5,
        })
        self.degraded_bulk_share = float(degraded_bulk_share)

    def limit_for(self, priority, *, degraded=False):
        share = self.shares.get(priority, self.shares[PRIORITY_BULK])
        if degraded and priority == PRIORITY_BULK:
            share *= self.degraded_bulk_share
        limit = int(self.max_inflight * share)
        # CRITICAL traffic is never limited below one slot: the
        # supervisor must always be able to probe a live worker.
        if priority == PRIORITY_CRITICAL:
            limit = max(1, limit)
        return limit


class AdmissionTicket:
    """Proof one request holds an in-flight slot (released exactly once)."""

    __slots__ = ("priority", "route", "_released")

    def __init__(self, priority, route):
        self.priority = priority
        self.route = route
        self._released = False


class AdmissionController:
    """The per-worker concurrency gate.

    Tracks requests in flight (by priority class) and admits a new one
    only while the class's limit has headroom.  The controller never
    queues: a request that cannot be admitted is shed immediately, so
    the decision costs a dict lookup and a comparison — overload makes
    the tier *faster* at saying no, not slower at saying yes.

    ``health`` (optional) is a :class:`~repro.serve.health.HealthTracker`;
    while it reports degraded, BULK admission tightens further.
    """

    def __init__(self, clock, *, policy=None, route_classes=None,
                 obs=None, health=None):
        self.clock = clock
        self.policy = policy or AdmissionPolicy()
        self.route_classes = dict(DEFAULT_ROUTE_CLASSES
                                  if route_classes is None
                                  else route_classes)
        self.obs = obs
        self.health = health
        self._inflight = {PRIORITY_CRITICAL: 0, PRIORITY_INTERACTIVE: 0,
                          PRIORITY_BULK: 0}
        self.admitted_total = 0
        self.shed_total = 0
        # The in-process tier may serve from several threads, so the
        # read-modify-write on the inflight counts is locked (a prefork
        # worker's single thread pays one uncontended acquire).
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def classify(self, route):
        return self.route_classes.get(route, PRIORITY_INTERACTIVE)

    @property
    def inflight(self):
        return sum(self._inflight.values())

    def try_admit(self, route):
        """Returns ``(ticket, 0)`` on admission, ``(None, retry_after_s)``
        on shed (counting and event-logging the shed)."""
        priority = self.classify(route)
        degraded = self.health is not None and self.health.degraded
        limit = self.policy.limit_for(priority, degraded=degraded)
        with self._lock:
            inflight = self.inflight
            admitted = inflight < limit
            if admitted:
                self._inflight[priority] += 1
                self.admitted_total += 1
            else:
                self.shed_total += 1
        if not admitted:
            retry_after = self.policy.retry_after_s.get(priority, 5)
            if self.obs is not None:
                self.obs.metrics.counter(
                    "serve_shed_total",
                    help="Requests shed by admission control, by route "
                         "and priority class").labels(
                    route=route or "<unrouted>",
                    priority=priority).inc()
                self.obs.events.emit(
                    "serve.shed", route=route, priority=priority,
                    inflight=inflight,
                    retry_after_s=retry_after)
            return None, retry_after
        self._gauge()
        return AdmissionTicket(priority, route), 0

    def release(self, ticket):
        if ticket is None:
            return
        with self._lock:
            if ticket._released:
                return
            ticket._released = True
            self._inflight[ticket.priority] -= 1
        self._gauge()

    def _gauge(self):
        if self.obs is not None:
            self.obs.metrics.gauge(
                "serve_inflight",
                help="Requests currently admitted and in flight in "
                     "this worker").set(self.inflight)


class AdmissionMiddleware:
    """Shed excess load with a fast, jargon-free 503 before any DB work.

    Installed right after the observability middleware, so shed
    requests keep their route label and their (near-zero) latency
    sample — the shed path is the cheapest response the tier can send.
    """

    def __init__(self, admission):
        self.admission = admission

    def process_request(self, request):
        from ..webstack.http import HttpResponse, JsonResponse
        from ..webstack.middleware import ObservabilityMiddleware
        ObservabilityMiddleware.resolve_route(request)
        route = getattr(request, "route_name", None)
        ticket, retry_after = self.admission.try_admit(route)
        if ticket is not None:
            request._admission_ticket = ticket
            return None
        wait = max(1, int(math.ceil(retry_after)))
        if request.path.startswith("/api/"):
            response = JsonResponse({"error": {
                "message": ("This service is receiving more requests "
                            "than it can answer right now. Please wait "
                            f"{wait} seconds and try again."),
                "retry_after_seconds": wait,
            }}, status=503)
        else:
            response = HttpResponse(
                ("<html><body><h1>Please try again in a moment</h1>"
                 "<p>The site is receiving more requests than it can "
                 f"answer right now. Please wait {wait} seconds and "
                 "reload the page.</p></body></html>"),
                status=503)
        response["Retry-After"] = str(wait)
        return response

    def process_response(self, request, response):
        self.admission.release(getattr(request, "_admission_ticket",
                                       None))
        return response


# ----------------------------------------------------------------------
# Request deadlines
# ----------------------------------------------------------------------

class DeadlinePolicy:
    """Budget shape: server default, clamped client override."""

    #: Request header carrying the client's budget, in milliseconds.
    HEADER = "HTTP_X_REQUEST_BUDGET_MS"

    def __init__(self, *, default_budget_s=15.0, min_budget_s=0.5,
                 max_budget_s=60.0):
        self.default_budget_s = float(default_budget_s)
        self.min_budget_s = float(min_budget_s)
        self.max_budget_s = float(max_budget_s)

    def budget_for(self, request):
        raw = request.META.get(self.HEADER)
        if raw:
            try:
                requested = float(raw) / 1000.0
            except (TypeError, ValueError):
                requested = self.default_budget_s
            return min(self.max_budget_s,
                       max(self.min_budget_s, requested))
        return self.default_budget_s

    def clamped_to_watchdog(self, watchdog_s, *, margin_s=5.0):
        """Return a policy whose budgets always expire before a
        per-request watchdog of *watchdog_s* seconds hard-kills the
        worker: a request legitimately granted the maximum budget must
        get the clean 504 the deadline machinery promises, never a
        dropped connection and a respawn.  ``None``/0 (watchdog
        disabled) returns this policy unchanged."""
        if not watchdog_s or watchdog_s <= 0:
            return self
        ceiling = max(0.1, watchdog_s - min(margin_s,
                                            watchdog_s * 0.25))
        return DeadlinePolicy(
            default_budget_s=min(self.default_budget_s, ceiling),
            min_budget_s=min(self.min_budget_s, ceiling),
            max_budget_s=min(self.max_budget_s, ceiling))


class DeadlineMiddleware:
    """Give every request a time budget, enforced at the ORM layer.

    ``process_request`` stamps ``request.deadline_at`` /
    ``request.budget_s`` and installs the connection ``deadline_hook``;
    the paired :class:`DeadlineScopeMiddleware` — appended *innermost*
    in the pipeline — clears the hook the moment the view returns, so
    post-view work (session saves, cache fills of the frozen response)
    is never torn down mid-write.  ``process_response`` accounts 504s
    (``serve_deadline_exceeded_total`` + ``serve.deadline_exceeded``)
    and rewrites the body as JSON for API clients.

    One worker serves one request at a time (the prefork model), so a
    single hook slot on the shared connection is race-free.
    """

    def __init__(self, clock, db, *, policy=None, obs=None):
        self.clock = clock
        self.db = db
        self.policy = policy or DeadlinePolicy()
        self.obs = obs

    def process_request(self, request):
        from ..webstack.orm.exceptions import DeadlineExceeded
        budget = self.policy.budget_for(request)
        deadline_at = self.clock.now + budget
        request.budget_s = budget
        request.deadline_at = deadline_at
        clock = self.clock

        def hook(operation, table):
            if clock.now > deadline_at:
                raise DeadlineExceeded(
                    "This request ran out of its "
                    f"{budget:g} second time budget before the page "
                    "could be built. Please try again.")

        self.db.deadline_hook = hook
        return None

    def process_response(self, request, response):
        # The scope middleware normally cleared the hook already; this
        # is the backstop for requests short-circuited before the view.
        self.db.deadline_hook = None
        deadline_at = getattr(request, "deadline_at", None)
        if deadline_at is not None and response.status_code < 500:
            remaining_ms = max(0.0, deadline_at - self.clock.now) * 1000
            response["X-Request-Budget-Remaining-Ms"] = \
                str(int(remaining_ms))
        if response.status_code != 504:
            return response
        route = getattr(request, "route_name", None) or "<unrouted>"
        if self.obs is not None:
            self.obs.metrics.counter(
                "serve_deadline_exceeded_total",
                help="Requests that exhausted their time budget, by "
                     "route").labels(route=route).inc()
            self.obs.events.emit(
                "serve.deadline_exceeded", route=route,
                budget_s=getattr(request, "budget_s", None))
        if request.path.startswith("/api/"):
            from ..webstack.http import JsonResponse
            budget = getattr(request, "budget_s", None)
            response = JsonResponse({"error": {
                "message": ("This request ran out of its time budget "
                            "before an answer could be built. Please "
                            "try again, or allow more time with the "
                            "X-Request-Budget-Ms header."),
                "budget_seconds": budget,
            }}, status=504)
        return response


class DeadlineScopeMiddleware:
    """Disarm the deadline hook as soon as the view returns.

    Appended *last* (innermost), so in the reversed response chain it
    runs first — before the auth middleware saves sessions and before
    the cache middleware stores the rendered page.  An over-budget
    request still 504s out of its view; what it never does is explode
    mid-teardown.
    """

    def __init__(self, db):
        self.db = db

    def process_response(self, request, response):
        self.db.deadline_hook = None
        return response
