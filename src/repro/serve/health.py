"""Database health tracking, brownout degradation, and liveness probes.

The portal's availability is the product: when the database behind it
sickens, the tier must *brown out* — keep answering cheaply and
honestly — rather than black out.  Three pieces:

- :class:`HealthTracker` — a sliding window over per-statement
  latency/error signals (fed by the connection ``statement_observer``
  installed with :meth:`HealthTracker.attach`, which wraps the actual
  execution — genuine sqlite failures and real latency count, not
  just injected ones).  Too many errors or
  slow statements flip the tier into **degraded** mode
  (``serve_degraded`` gauge, ``serve.degraded.enter``/``exit``
  events); a quiet period followed by a healthy statement flips it
  back.
- :class:`BrownoutMiddleware` — while degraded, expensive HTML routes
  that have no cached copy return a friendly "reduced service" page
  instead of hammering a sick database (cached — even stale — copies
  are served by the cache middleware before this runs).
- :func:`build_health_routes` — ``/healthz`` (liveness: the process
  answers) and ``/readyz`` (readiness: an actual database probe plus
  the tracker's verdict), the supervisor-facing split between "alive"
  and "fit to serve".

:class:`DbFaultInjector` is the chaos harness's database fault: it
adds latency (virtual seconds under the sim clock, real sleep under a
wall clock) and/or raises
:class:`~repro.webstack.orm.exceptions.DatabaseUnavailable`, either
programmatically or when a trigger file exists (so a prefork smoke
test can flip an outage across process boundaries).
"""

from __future__ import annotations

import os
from collections import deque


class DbFaultInjector:
    """Deterministic database chaos for the serving tier.

    Parameters
    ----------
    clock:
        The serving clock; injected latency advances it when it can be
        advanced (the sim clock), and sleeps real time otherwise.
    latency_s:
        Virtual/real seconds every statement takes while set.
    fail:
        While True, every statement raises ``DatabaseUnavailable``.
    trigger_file:
        Optional path: while the file exists, statements fail — the
        cross-process injection switch (a supervisor or CI step touches
        the file; every worker's injector sees it).
    """

    def __init__(self, clock=None, *, latency_s=0.0, fail=False,
                 trigger_file=None):
        self.clock = clock
        self.latency_s = float(latency_s)
        self.fail = bool(fail)
        self.trigger_file = trigger_file

    def __call__(self, operation, table):
        from ..webstack.orm.exceptions import DatabaseUnavailable
        if self.latency_s > 0.0 and self.clock is not None:
            advance = getattr(self.clock, "advance", None)
            if advance is not None:
                advance(self.latency_s)
            else:                         # wall clock: real latency
                import time
                time.sleep(self.latency_s)
        if self.fail or (self.trigger_file is not None
                         and os.path.exists(self.trigger_file)):
            raise DatabaseUnavailable(
                "The database did not answer (injected outage).")


def _signals_db_sickness(error):
    """True for failures that mean the database itself is sick.

    Connection-level errors (including the injected
    ``DatabaseUnavailable``) and raw sqlite errors count; constraint
    violations are application-level and deadline exhaustion is a
    per-request budget, so neither feeds the degradation window.
    """
    import sqlite3
    from ..webstack.orm.exceptions import ConnectionError, IntegrityError
    if isinstance(error, IntegrityError):
        return False
    return isinstance(error, (ConnectionError, sqlite3.Error))


class HealthTracker:
    """Degradation state machine over DB error/latency signals.

    Enter: once at least ``min_samples`` of the last ``window``
    statements are recorded and the bad fraction (errors + statements
    slower than ``slow_statement_s``) reaches ``error_threshold``, the
    tier enters degraded mode.

    Exit: while degraded, the first *healthy* statement observed after
    ``recovery_after_s`` of error silence exits it (half-open
    discipline: recovery is proven by real traffic or a readiness
    probe, never by the mere passage of time).

    All decisions read the injected clock — deterministic under the
    sim clock, honest under a wall clock.
    """

    def __init__(self, clock, *, window=10, min_samples=4,
                 error_threshold=0.5, slow_statement_s=1.0,
                 recovery_after_s=5.0, obs=None):
        self.clock = clock
        self.window = int(window)
        self.min_samples = int(min_samples)
        self.error_threshold = float(error_threshold)
        self.slow_statement_s = float(slow_statement_s)
        self.recovery_after_s = float(recovery_after_s)
        self.obs = obs
        self._outcomes = deque(maxlen=self.window)
        self.degraded = False
        self.degraded_since = None
        self.last_error_at = None
        self.enter_count = 0
        self._gauge()

    # -- signal intake -------------------------------------------------
    def record_db_ok(self, latency_s=0.0):
        healthy = latency_s <= self.slow_statement_s
        self._outcomes.append(healthy)
        if not healthy:
            self.last_error_at = self.clock.now
            self._maybe_enter()
        elif self.degraded:
            quiet_since = self.last_error_at if self.last_error_at \
                is not None else -float("inf")
            if self.clock.now - quiet_since >= self.recovery_after_s:
                self._exit()
        else:
            self._maybe_enter()

    def record_db_error(self):
        self._outcomes.append(False)
        self.last_error_at = self.clock.now
        self._maybe_enter()

    # -- state machine -------------------------------------------------
    def _maybe_enter(self):
        if self.degraded or len(self._outcomes) < self.min_samples:
            return
        bad = sum(1 for ok in self._outcomes if not ok)
        if bad / len(self._outcomes) >= self.error_threshold:
            self.degraded = True
            self.degraded_since = self.clock.now
            self.enter_count += 1
            self._gauge()
            if self.obs is not None:
                self.obs.events.emit(
                    "serve.degraded.enter",
                    bad=bad, window=len(self._outcomes))

    def _exit(self):
        was_degraded_for = None
        if self.degraded_since is not None:
            was_degraded_for = self.clock.now - self.degraded_since
        self.degraded = False
        self.degraded_since = None
        self._outcomes.clear()
        self._gauge()
        if self.obs is not None:
            self.obs.events.emit("serve.degraded.exit",
                                 degraded_for_s=was_degraded_for)

    def _gauge(self):
        if self.obs is not None:
            self.obs.metrics.gauge(
                "serve_degraded",
                help="1 while the tier serves in degraded (brownout) "
                     "mode").set(1 if self.degraded else 0)

    # -- wiring --------------------------------------------------------
    def attach(self, db, injector=None):
        """Wire this tracker into *db*: the optional chaos *injector*
        becomes the connection's ``fault_hook`` and the tracker itself
        its ``statement_observer``, so every statement the connection
        actually runs feeds the latency/error window — injected faults
        and genuine sqlite errors alike, injected latency and real
        execution time alike."""
        clock = self.clock

        def begin(operation, table):
            started = clock.now

            def finish(error):
                if error is None:
                    self.record_db_ok(clock.now - started)
                elif _signals_db_sickness(error):
                    self.record_db_error()
                # Anything else — deadline exhaustion, permission or
                # constraint violations — says nothing about database
                # health: no sample.

            return finish

        db.fault_hook = injector
        db.statement_observer = begin
        return self

    def probe(self, db):
        """One trivial statement through the hooks; True when the
        database answered (the readiness check's evidence).  *Any*
        failure — injected outage, raw sqlite error, spent deadline —
        means not-ready: the caller must get the structured 503, never
        an unhandled traceback."""
        try:
            db.ping()
        except Exception:  # noqa: BLE001 - not-ready, whatever broke
            return False
        return True

    @staticmethod
    def probe_routes(db):
        """Probe each data path of *db* independently.

        Routed connections (:class:`~repro.webstack.orm.ReplicaRouter`)
        expose ``ping_routes()``: the primary and the replica readers
        are probed separately so readiness can name the unhealthy side.
        Plain connections report a single ``"database"`` route.
        Returns ``{route_name: True_or_False}``.
        """
        ping_routes = getattr(db, "ping_routes", None)
        if ping_routes is None:
            try:
                db.ping()
            except Exception:  # noqa: BLE001 - not-ready evidence
                return {"database": False}
            return {"database": True}
        return {route: error is None
                for route, error in ping_routes().items()}

    def readiness(self):
        """``(ready, reason)`` — *reason* is plain language."""
        if self.degraded:
            return False, ("The service is temporarily running in "
                           "reduced mode while its database recovers.")
        return True, "ready"


#: Routes the brownout refuses while degraded when no cached copy is on
#: hand: the expensive HTML renders (the cache middleware serves warm
#: or stale copies of these *before* this middleware runs).
DEFAULT_BROWNOUT_ROUTES = frozenset({
    "home", "star-list", "star-detail", "sim-list", "sim-detail",
    "sim-hr", "sim-echelle", "sim-hr-svg", "sim-echelle-svg",
    "statistics",
})


class BrownoutMiddleware:
    """While degraded, answer expensive routes cheaply and honestly.

    Sits *after* the cache middleware (so fresh and stale cached copies
    win) and *before* auth/views (so the sick database is spared the
    render).  Cheap routes, probes, and the API pass through — the
    brownout narrows service, it does not close it.
    """

    def __init__(self, health, *, routes=None, retry_after_s=15,
                 obs=None):
        self.health = health
        self.routes = frozenset(DEFAULT_BROWNOUT_ROUTES
                                if routes is None else routes)
        self.retry_after_s = int(retry_after_s)
        self.obs = obs

    def process_request(self, request):
        if not self.health.degraded:
            return None
        from ..webstack.http import HttpResponse
        from ..webstack.middleware import ObservabilityMiddleware
        ObservabilityMiddleware.resolve_route(request)
        route = getattr(request, "route_name", None)
        if route not in self.routes:
            return None
        if self.obs is not None:
            self.obs.metrics.counter(
                "serve_brownout_total",
                help="Expensive requests refused while degraded, by "
                     "route").labels(route=route).inc()
            self.obs.events.emit("serve.brownout", route=route)
        response = HttpResponse(
            ("<html><body><h1>Reduced service</h1>"
             "<p>The site is temporarily showing only its most "
             "essential pages while a problem is fixed. Your "
             "simulations keep running. Please try this page again "
             f"in {self.retry_after_s} seconds.</p></body></html>"),
            status=503)
        response["Retry-After"] = str(self.retry_after_s)
        response["X-Degraded"] = "1"
        return response


def build_health_routes(health, db):
    """``/healthz`` + ``/readyz`` url patterns for the portal site.

    Liveness (``/healthz``) answers 200 whenever the process can run a
    view at all — a supervisor uses it to decide *restart*.  Readiness
    (``/readyz``) probes the database through the resilience hooks and
    reports the tracker's verdict — a load balancer uses it to decide
    *route traffic here*.  Both are exempt from rate limiting, caching,
    and (being CRITICAL class) admission shedding.
    """
    from ..webstack.http import HttpResponse, JsonResponse
    from ..webstack.urls import path

    def healthz(request):
        return HttpResponse("ok\n", content_type="text/plain")

    def readyz(request):
        routes = health.probe_routes(db)
        probe_ok = all(routes.values())
        ready, reason = health.readiness()
        ready = ready and probe_ok
        if ready:
            return JsonResponse({"ready": True, "degraded": False,
                                 "routes": routes})
        if not probe_ok:
            unhealthy = sorted(route for route, ok in routes.items()
                               if not ok)
            if unhealthy == ["database"]:
                reason = ("The service cannot reach its database "
                          "right now.")
            elif "primary" in unhealthy and "replica" in unhealthy:
                reason = ("The service cannot reach its database "
                          "right now (neither the primary nor the "
                          "replica readers are answering).")
            elif "primary" in unhealthy:
                reason = ("The service cannot write to its database "
                          "right now: the primary connection is not "
                          "answering (replica readers are fine).")
            else:
                reason = ("The service cannot read from its replica "
                          "databases right now: a replica reader is "
                          "not answering (the primary is fine).")
        response = JsonResponse(
            {"ready": False, "degraded": health.degraded,
             "reason": reason, "routes": routes}, status=503)
        response["Retry-After"] = str(
            max(1, int(health.recovery_after_s)))
        return response

    return [
        path("healthz", healthz, name="healthz"),
        path("readyz", readyz, name="readyz"),
    ]
