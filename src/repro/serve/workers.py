"""Prefork multi-worker WSGI serving.

The paper's production posture put Django behind Apache's process pool;
this module is that pool, stdlib-only.  The supervisor binds one
listening socket and forks N real worker processes that all ``accept()``
on it — the kernel load-balances connections across them.  Each worker
builds its *own* application (and therefore its own per-role reader
database connections) after the fork via ``app_factory(worker_index)``,
so no SQLite connection is ever shared across a process boundary.

Lifecycle:

- :meth:`PreforkServer.start` forks the workers;
- :meth:`PreforkServer.supervise_once` reaps and respawns dead workers
  (call it in a loop, or use :meth:`serve_forever`);
- :meth:`PreforkServer.shutdown` drains gracefully: SIGTERM asks each
  worker to finish its in-flight request and exit; stragglers past the
  deadline are killed.

Workers protect themselves so that one bad request cannot take a slot
out of service permanently:

- a **per-request watchdog** (``watchdog_s``) hard-exits a worker whose
  request handler wedges — the supervisor respawns a fresh one;
- a **socket timeout** (``socket_timeout_s``) closes connections that
  stop sending (a slow or dead client cannot hold the accept slot);
- **max-requests recycling** (``max_requests``) retires a worker
  cleanly after N requests, bounding the damage of any slow leak.

And the supervisor protects the fleet from a *broken* worker: an exit
within ``rapid_exit_s`` of spawn counts toward a crash loop; each
consecutive rapid exit doubles a respawn backoff (``serve.worker.
crashloop`` fires once the streak reaches ``crashloop_after``), so a
worker that dies on startup cannot pin a CPU respawning in a tight
loop.  The parent process never serves requests; it only supervises.
Worker liveness is exported as gauges (``serve_workers_alive``,
``serve_worker_up{worker=...}``) on the supervisor's observability
facade when one is provided.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer

#: Exit status a worker uses when its own watchdog fires: the request
#: handler wedged past the watchdog budget and the worker shot itself
#: rather than hold the slot.  Distinct from 0 (clean drain/recycle)
#: and 1 (crash) so the supervisor can tell the stories apart.
WATCHDOG_EXIT = 66

#: The one help string for the per-worker liveness gauge.  Every
#: registration site goes through :func:`_worker_up_gauge`; the metrics
#: registry keeps the first help it sees, so registering with
#: divergent strings (as earlier revisions did) made the exported help
#: depend on call order.
_WORKER_UP_HELP = "1 while this worker process is serving"


def _worker_up_gauge(obs):
    return obs.metrics.gauge("serve_worker_up", help=_WORKER_UP_HELP)


class _QuietHandler(WSGIRequestHandler):
    def log_message(self, format, *args):  # noqa: A002 - wsgiref API
        pass


class _WorkerWSGIServer(WSGIServer):
    """WSGI server running on an inherited (already-listening) socket."""

    allow_reuse_address = True

    def __init__(self, listen_sock, handler_class=_QuietHandler):
        super().__init__(listen_sock.getsockname(), handler_class,
                         bind_and_activate=False)
        self.socket.close()               # the unbound placeholder
        self.socket = listen_sock
        host, port = listen_sock.getsockname()[:2]
        self.server_name = host
        self.server_port = port
        self.setup_environ()


class _RequestGuard:
    """WSGI wrapper arming the worker's per-request self-protection.

    Wraps the real app inside the worker: each call arms a watchdog
    timer that ``os._exit(WATCHDOG_EXIT)``'s the whole process if the
    request (view *and* response iteration) outlives ``watchdog_s`` —
    a wedged worker is worth less than a dead one, because the dead
    one gets respawned.  Also counts requests and asks the server to
    shut down cleanly once ``max_requests`` have been served (the
    supervisor respawns; exit 0 carries no crash stigma).
    """

    def __init__(self, app, server, *, watchdog_s=None,
                 max_requests=None):
        self.app = app
        self.server = server
        self.watchdog_s = watchdog_s
        self.max_requests = max_requests
        self.requests_served = 0

    def _recycle(self):
        # shutdown() blocks until serve_forever returns, so it must not
        # run on the request thread that serve_forever is waiting on.
        threading.Thread(target=self.server.shutdown,
                         daemon=True).start()

    def __call__(self, environ, start_response):
        timer = None
        if self.watchdog_s is not None:
            timer = threading.Timer(self.watchdog_s, os._exit,
                                    (WATCHDOG_EXIT,))
            timer.daemon = True
            timer.start()
        try:
            yield from self.app(environ, start_response)
        finally:
            if timer is not None:
                timer.cancel()
            self.requests_served += 1
            if self.max_requests is not None \
                    and self.requests_served >= self.max_requests:
                self._recycle()


def mark_worker_process(obs, index):
    """Stamp this process's identity gauges (called inside a worker)."""
    if obs is None:
        return
    _worker_up_gauge(obs).labels(worker=str(index)).set(1)


class PreforkServer:
    """Fork-per-worker HTTP serving over one shared listening socket.

    Parameters
    ----------
    app_factory:
        ``app_factory(worker_index) -> WSGI app``, called *inside* each
        worker after the fork.  This is where per-worker database
        connections are (re)opened.
    workers:
        Number of worker processes.
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port`).
    obs:
        Optional supervisor-side observability facade for worker
        gauges/counters.
    watchdog_s:
        Per-request wall-clock budget inside each worker; a handler
        that outlives it costs the worker its life (exit
        :data:`WATCHDOG_EXIT`) and the supervisor respawns.  None
        disables.
    max_requests:
        Requests one worker serves before recycling itself cleanly.
        None disables.
    socket_timeout_s:
        Per-connection socket timeout inside workers; a client that
        stops sending loses its connection instead of holding the
        handler.  None disables.
    rapid_exit_s / respawn_backoff_base_s / respawn_backoff_max_s /
    crashloop_after:
        Crash-loop policy: a non-clean exit within ``rapid_exit_s`` of
        spawn grows a per-slot backoff (base doubling, capped) before
        the respawn; ``crashloop_after`` consecutive rapid exits emit
        a ``serve.worker.crashloop`` event.
    time_source:
        Monotonic-seconds callable (test seam; real deployments keep
        ``time.monotonic`` — worker uptime is real OS time, not
        simulation time).
    """

    def __init__(self, app_factory, *, workers=2, host="127.0.0.1",
                 port=0, backlog=64, obs=None, watchdog_s=None,
                 max_requests=None, socket_timeout_s=10.0,
                 rapid_exit_s=1.0, respawn_backoff_base_s=0.5,
                 respawn_backoff_max_s=30.0, crashloop_after=3,
                 time_source=time.monotonic):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.app_factory = app_factory
        self.n_workers = int(workers)
        self.obs = obs
        self.watchdog_s = watchdog_s
        self.max_requests = max_requests
        self.socket_timeout_s = socket_timeout_s
        self.rapid_exit_s = float(rapid_exit_s)
        self.respawn_backoff_base_s = float(respawn_backoff_base_s)
        self.respawn_backoff_max_s = float(respawn_backoff_max_s)
        self.crashloop_after = int(crashloop_after)
        self._time = time_source
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)
        self.host, self.port = self._sock.getsockname()[:2]
        self.pids = {}         # worker index -> pid
        self.respawns = 0
        self.watchdog_exits = 0
        self._draining = False
        self._spawned_at = {}  # worker index -> time_source() at spawn
        self._rapid_exits = {}  # worker index -> consecutive rapid exits
        self._respawn_at = {}  # worker index -> earliest respawn time

    @property
    def url(self):
        return f"http://{self.host}:{self.port}"

    # -- worker side ---------------------------------------------------
    def _handler_class(self):
        if self.socket_timeout_s is None:
            return _QuietHandler
        # BaseRequestHandler honours a class-level ``timeout`` by
        # calling settimeout() on the accepted connection; a read that
        # then blocks past it raises, handle_one_request closes the
        # connection, and the slowloris client is gone.
        return type("_TimeoutHandler", (_QuietHandler,),
                    {"timeout": self.socket_timeout_s})

    def _worker_main(self, index):   # pragma: no cover - child process
        status = 1
        try:
            # A drain request during startup (before the server exists,
            # so before anything can be in flight) is a clean exit —
            # without this, a SIGTERM racing the app build would kill
            # the worker with the signal's default action.
            signal.signal(signal.SIGTERM, lambda *_: os._exit(0))
            signal.signal(signal.SIGINT, signal.SIG_IGN)
            app = self.app_factory(index)
            server = _WorkerWSGIServer(
                self._sock, handler_class=self._handler_class())
            server.set_app(_RequestGuard(
                app, server, watchdog_s=self.watchdog_s,
                max_requests=self.max_requests))
            # Graceful drain: finish the in-flight request, then stop
            # accepting.  shutdown() must not run on the signal frame
            # (it blocks until serve_forever exits), so hand it to a
            # thread.
            def drain(signum, frame):
                threading.Thread(target=server.shutdown,
                                 daemon=True).start()
            signal.signal(signal.SIGTERM, drain)
            server.serve_forever(poll_interval=0.05)
            status = 0
        finally:
            # Never unwind into the parent's interpreter state (test
            # harness, atexit hooks): a forked worker always _exits.
            os._exit(status)

    # -- supervisor side -----------------------------------------------
    def _fork(self):
        return os.fork()     # seam: tests stub this to count spawns

    def _spawn(self, index):
        pid = self._fork()
        if pid == 0:
            self._worker_main(index)     # never returns
        self.pids[index] = pid
        self._spawned_at[index] = self._time()
        self._respawn_at.pop(index, None)
        if self.obs is not None:
            _worker_up_gauge(self.obs).labels(worker=str(index)).set(1)
        return pid

    def start(self):
        for index in range(self.n_workers):
            self._spawn(index)
        self._update_alive_gauge()
        return self

    def _update_alive_gauge(self):
        if self.obs is not None:
            self.obs.metrics.gauge(
                "serve_workers_alive",
                help="Live worker processes").set(len(self.pids))

    def _respawn_delay(self, index, exitcode, uptime):
        """Crash-loop accounting; returns seconds to wait before the
        respawn (0 = immediately)."""
        if exitcode == 0:
            # Clean exit: drain or max-requests recycle, no stigma.
            self._rapid_exits.pop(index, None)
            return 0.0
        if uptime is not None and uptime >= self.rapid_exit_s:
            # Died, but served for a while first: an isolated crash,
            # not a loop.  Streak over.
            self._rapid_exits.pop(index, None)
            return 0.0
        streak = self._rapid_exits.get(index, 0) + 1
        self._rapid_exits[index] = streak
        delay = min(self.respawn_backoff_max_s,
                    self.respawn_backoff_base_s * (2 ** (streak - 1)))
        if streak == self.crashloop_after and self.obs is not None:
            self.obs.events.emit(
                "serve.worker.crashloop", worker=index,
                rapid_exits=streak, backoff_s=round(delay, 3))
        return delay

    def supervise_once(self):
        """Reap exited workers; respawn them unless draining.

        A worker that exited cleanly (drain, recycle) or after a decent
        uptime respawns immediately; rapid non-clean exits respawn
        after an exponential backoff so a crash-looping factory cannot
        spin the supervisor.  Returns the list of worker indexes
        respawned *this call* (backed-off slots respawn on a later
        call, once their delay elapses).
        """
        now = self._time()
        respawned = []
        for index, pid in list(self.pids.items()):
            done, status = os.waitpid(pid, os.WNOHANG)
            if done == 0:
                continue
            exitcode = os.waitstatus_to_exitcode(status)
            spawned_at = self._spawned_at.pop(index, None)
            uptime = None if spawned_at is None else now - spawned_at
            del self.pids[index]
            if self.obs is not None:
                _worker_up_gauge(self.obs).labels(
                    worker=str(index)).set(0)
            if exitcode == WATCHDOG_EXIT:
                self.watchdog_exits += 1
                if self.obs is not None:
                    self.obs.metrics.counter(
                        "serve_worker_watchdog_exits_total",
                        help="Workers that shot themselves after a "
                             "wedged request").inc()
                    self.obs.events.emit("serve.worker.watchdog",
                                         worker=index)
            if self._draining:
                continue
            delay = self._respawn_delay(index, exitcode, uptime)
            if delay > 0.0:
                self._respawn_at[index] = now + delay
            else:
                self._respawn_at[index] = now   # due immediately
        # Respawn every slot whose (possibly zero) delay has elapsed.
        for index, due in list(self._respawn_at.items()):
            if self._draining:
                break
            if now >= due:
                self._spawn(index)
                self.respawns += 1
                respawned.append(index)
                if self.obs is not None:
                    self.obs.metrics.counter(
                        "serve_worker_respawns_total",
                        help="Workers respawned after unexpected exit"
                    ).inc()
                    self.obs.events.emit("serve.worker.respawn",
                                         worker=index)
        self._update_alive_gauge()
        return respawned

    def serve_forever(self, poll_interval=0.5):  # pragma: no cover
        """Supervise until interrupted (the CLI's blocking loop)."""
        try:
            while True:
                self.supervise_once()
                time.sleep(poll_interval)
        except KeyboardInterrupt:
            self.shutdown()

    def kill_worker(self, index):
        """Hard-kill one worker (the soak harness's crash injector)."""
        os.kill(self.pids[index], signal.SIGKILL)

    def shutdown(self, timeout=10.0):
        """Graceful drain: returns {index: exit_status} once all exit."""
        self._draining = True
        self._respawn_at.clear()
        for pid in self.pids.values():
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + timeout
        statuses = {}
        for index, pid in list(self.pids.items()):
            remaining = deadline - time.monotonic()
            statuses[index] = self._reap(pid, max(0.0, remaining))
            del self.pids[index]
            self._spawned_at.pop(index, None)
            if self.obs is not None:
                _worker_up_gauge(self.obs).labels(
                    worker=str(index)).set(0)
        self._update_alive_gauge()
        self._sock.close()
        return statuses

    @staticmethod
    def _reap(pid, timeout):
        deadline = time.monotonic() + timeout
        while True:
            done, status = os.waitpid(pid, os.WNOHANG)
            if done:
                return os.waitstatus_to_exitcode(status)
            if time.monotonic() >= deadline:
                os.kill(pid, signal.SIGKILL)
                _, status = os.waitpid(pid, 0)
                return os.waitstatus_to_exitcode(status)
            time.sleep(0.02)
