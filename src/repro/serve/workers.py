"""Prefork multi-worker WSGI serving.

The paper's production posture put Django behind Apache's process pool;
this module is that pool, stdlib-only.  The supervisor binds one
listening socket and forks N real worker processes that all ``accept()``
on it — the kernel load-balances connections across them.  Each worker
builds its *own* application (and therefore its own per-role reader
database connections) after the fork via ``app_factory(worker_index)``,
so no SQLite connection is ever shared across a process boundary.

Lifecycle:

- :meth:`PreforkServer.start` forks the workers;
- :meth:`PreforkServer.supervise_once` reaps and respawns dead workers
  (call it in a loop, or use :meth:`serve_forever`);
- :meth:`PreforkServer.shutdown` drains gracefully: SIGTERM asks each
  worker to finish its in-flight request and exit; stragglers past the
  deadline are killed.

The parent process never serves requests; it only supervises.  Worker
liveness is exported as gauges (``serve_workers_alive``,
``serve_worker_up{worker=...}``) on the supervisor's observability
facade when one is provided.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer


class _QuietHandler(WSGIRequestHandler):
    def log_message(self, format, *args):  # noqa: A002 - wsgiref API
        pass


class _WorkerWSGIServer(WSGIServer):
    """WSGI server running on an inherited (already-listening) socket."""

    allow_reuse_address = True

    def __init__(self, listen_sock, handler_class=_QuietHandler):
        super().__init__(listen_sock.getsockname(), handler_class,
                         bind_and_activate=False)
        self.socket.close()               # the unbound placeholder
        self.socket = listen_sock
        host, port = listen_sock.getsockname()[:2]
        self.server_name = host
        self.server_port = port
        self.setup_environ()


def mark_worker_process(obs, index):
    """Stamp this process's identity gauges (called inside a worker)."""
    if obs is None:
        return
    obs.metrics.gauge(
        "serve_worker_up",
        help="1 while this worker process is serving").labels(
        worker=str(index)).set(1)


class PreforkServer:
    """Fork-per-worker HTTP serving over one shared listening socket.

    Parameters
    ----------
    app_factory:
        ``app_factory(worker_index) -> WSGI app``, called *inside* each
        worker after the fork.  This is where per-worker database
        connections are (re)opened.
    workers:
        Number of worker processes.
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port`).
    obs:
        Optional supervisor-side observability facade for worker
        gauges/counters.
    """

    def __init__(self, app_factory, *, workers=2, host="127.0.0.1",
                 port=0, backlog=64, obs=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.app_factory = app_factory
        self.n_workers = int(workers)
        self.obs = obs
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)
        self.host, self.port = self._sock.getsockname()[:2]
        self.pids = {}         # worker index -> pid
        self.respawns = 0
        self._draining = False

    @property
    def url(self):
        return f"http://{self.host}:{self.port}"

    # -- worker side ---------------------------------------------------
    def _worker_main(self, index):   # pragma: no cover - child process
        status = 1
        try:
            # A drain request during startup (before the server exists,
            # so before anything can be in flight) is a clean exit —
            # without this, a SIGTERM racing the app build would kill
            # the worker with the signal's default action.
            signal.signal(signal.SIGTERM, lambda *_: os._exit(0))
            signal.signal(signal.SIGINT, signal.SIG_IGN)
            app = self.app_factory(index)
            server = _WorkerWSGIServer(self._sock)
            server.set_app(app)
            # Graceful drain: finish the in-flight request, then stop
            # accepting.  shutdown() must not run on the signal frame
            # (it blocks until serve_forever exits), so hand it to a
            # thread.
            def drain(signum, frame):
                threading.Thread(target=server.shutdown,
                                 daemon=True).start()
            signal.signal(signal.SIGTERM, drain)
            server.serve_forever(poll_interval=0.05)
            status = 0
        finally:
            # Never unwind into the parent's interpreter state (test
            # harness, atexit hooks): a forked worker always _exits.
            os._exit(status)

    # -- supervisor side -----------------------------------------------
    def _spawn(self, index):
        pid = os.fork()
        if pid == 0:
            self._worker_main(index)     # never returns
        self.pids[index] = pid
        if self.obs is not None:
            self.obs.metrics.gauge(
                "serve_worker_up",
                help="1 while this worker process is serving").labels(
                worker=str(index)).set(1)
        return pid

    def start(self):
        for index in range(self.n_workers):
            self._spawn(index)
        self._update_alive_gauge()
        return self

    def _update_alive_gauge(self):
        if self.obs is not None:
            self.obs.metrics.gauge(
                "serve_workers_alive",
                help="Live worker processes").set(len(self.pids))

    def supervise_once(self):
        """Reap exited workers; respawn them unless draining.

        Returns the list of worker indexes respawned.
        """
        respawned = []
        for index, pid in list(self.pids.items()):
            done, _status = os.waitpid(pid, os.WNOHANG)
            if done == 0:
                continue
            del self.pids[index]
            if self.obs is not None:
                self.obs.metrics.gauge(
                    "serve_worker_up", help="").labels(
                    worker=str(index)).set(0)
            if not self._draining:
                self._spawn(index)
                self.respawns += 1
                respawned.append(index)
                if self.obs is not None:
                    self.obs.metrics.counter(
                        "serve_worker_respawns_total",
                        help="Workers respawned after unexpected exit"
                    ).inc()
                    self.obs.events.emit("serve.worker.respawn",
                                         worker=index)
        self._update_alive_gauge()
        return respawned

    def serve_forever(self, poll_interval=0.5):  # pragma: no cover
        """Supervise until interrupted (the CLI's blocking loop)."""
        try:
            while True:
                self.supervise_once()
                time.sleep(poll_interval)
        except KeyboardInterrupt:
            self.shutdown()

    def kill_worker(self, index):
        """Hard-kill one worker (the soak harness's crash injector)."""
        os.kill(self.pids[index], signal.SIGKILL)

    def shutdown(self, timeout=10.0):
        """Graceful drain: returns {index: exit_status} once all exit."""
        self._draining = True
        for pid in self.pids.values():
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + timeout
        statuses = {}
        for index, pid in list(self.pids.items()):
            remaining = deadline - time.monotonic()
            statuses[index] = self._reap(pid, max(0.0, remaining))
            del self.pids[index]
            if self.obs is not None:
                self.obs.metrics.gauge(
                    "serve_worker_up", help="").labels(
                    worker=str(index)).set(0)
        self._update_alive_gauge()
        self._sock.close()
        return statuses

    @staticmethod
    def _reap(pid, timeout):
        deadline = time.monotonic() + timeout
        while True:
            done, status = os.waitpid(pid, os.WNOHANG)
            if done:
                return os.waitstatus_to_exitcode(status)
            if time.monotonic() >= deadline:
                os.kill(pid, signal.SIGKILL)
                _, status = os.waitpid(pid, 0)
                return os.waitstatus_to_exitcode(status)
            time.sleep(0.02)
