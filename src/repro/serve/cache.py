"""Read-through response cache with tag-versioned write invalidation.

The serving tier's answer to "fetch once, serve many" (the JHU/SDSS
batch-access argument): catalog, star, feed, and statistics pages are
rendered once and then served from cache until either their TTL lapses
or a *write* to the rows they render from invalidates them.

Two layers, one correctness scheme:

- **L1** — a per-worker in-process LRU holding ready-to-send response
  tuples.  Fast path: a dict hit plus a tag-version check.
- **L2** — a shared store every worker can reach.  In-process
  deployments use :class:`InMemorySharedStore`; the prefork runner can
  point every worker at one :class:`SqliteSharedStore` file.

Invalidation never enumerates keys.  Every cached entry records the
*versions* of the tags it depends on (``sim:42``, ``stars``, ``stats``,
...); a write bumps the affected tags' versions in the shared store,
and any entry — in any worker's L1 or in L2 — whose recorded versions
lag the current ones is stale and treated as a miss on its next read.
That makes a purge O(tags bumped) rather than O(entries cached), and
makes it *targeted*: a write to simulation 42 leaves star pages, the
suggest endpoint, and every other simulation's detail page warm.

The model→tags map lives in :data:`MODEL_INVALIDATION`; receivers are
connected to the ORM's ``post_save``/``post_delete`` signals, so a
write through *any* role connection — portal form POST, daemon poll,
admin edit — purges the same keys.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict


class CacheEntry:
    """One cached value plus the metadata that decides its freshness."""

    __slots__ = ("value", "expires_at", "tag_versions")

    def __init__(self, value, expires_at, tag_versions):
        self.value = value
        self.expires_at = expires_at
        self.tag_versions = dict(tag_versions)


class InMemorySharedStore:
    """Thread-safe shared cache store: LRU entries + tag versions.

    "Shared" here means shared between every consumer holding a
    reference — the portal's request threads and the daemon's
    invalidation receivers in an in-process deployment.
    """

    def __init__(self, capacity=2048):
        self.capacity = int(capacity)
        self._entries = OrderedDict()
        self._tag_versions = {}
        self._lock = threading.Lock()
        self.evictions = 0

    # -- entries -------------------------------------------------------
    def get(self, key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def set(self, key, entry):
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def delete(self, key):
        with self._lock:
            self._entries.pop(key, None)

    def __len__(self):
        return len(self._entries)

    # -- tag versions --------------------------------------------------
    def tag_versions(self, tags):
        with self._lock:
            return {tag: self._tag_versions.get(tag, 0) for tag in tags}

    def bump_tags(self, tags):
        with self._lock:
            for tag in tags:
                self._tag_versions[tag] = \
                    self._tag_versions.get(tag, 0) + 1


class SqliteSharedStore:
    """File-backed shared store for cross-process (prefork) serving.

    Each worker process opens its own connection to one cache file;
    entries are pickled response tuples.  Tag versions live in their
    own table, so the L1 freshness check is one tiny indexed SELECT.

    The file is kept bounded by :meth:`prune` (called by
    :meth:`PortalCache.set`, amortised over writes): expired rows are
    deleted and the table is capped at *capacity* entries — without
    it, unique-query anonymous traffic would grow the file without
    bound, since an expired row is otherwise only removed when that
    exact key is read again.
    """

    #: ``set`` calls between prune sweeps (amortises the DELETEs).
    PRUNE_EVERY = 64

    def __init__(self, path, capacity=8192):
        self.path = path
        self.capacity = int(capacity)
        self._local = threading.local()
        self.evictions = 0
        self._sets_since_prune = 0
        # Seconds an *expired* row is retained for stale serving (the
        # brownout's raw material).  0 = sweep at expiry, the default;
        # :class:`PortalCache` raises it to its own stale grace.
        self.retain_stale_s = 0.0
        self._connection().executescript(
            "CREATE TABLE IF NOT EXISTS cache_entries ("
            " key TEXT PRIMARY KEY, value BLOB, expires_at REAL,"
            " tag_versions BLOB);"
            "CREATE TABLE IF NOT EXISTS cache_tags ("
            " tag TEXT PRIMARY KEY, version INTEGER NOT NULL);")

    def _connection(self):
        import sqlite3
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(self.path, check_same_thread=False,
                                   timeout=5.0)
            conn.isolation_level = None   # autocommit; single statements
            self._local.conn = conn
        return conn

    def close(self):
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def get(self, key):
        row = self._connection().execute(
            "SELECT value, expires_at, tag_versions FROM cache_entries"
            " WHERE key = ?", (key,)).fetchone()
        if row is None:
            return None
        return CacheEntry(pickle.loads(row[0]), row[1],
                          pickle.loads(row[2]))

    def set(self, key, entry):
        self._connection().execute(
            "INSERT OR REPLACE INTO cache_entries"
            " (key, value, expires_at, tag_versions) VALUES (?, ?, ?, ?)",
            (key, pickle.dumps(entry.value), entry.expires_at,
             pickle.dumps(entry.tag_versions)))

    def delete(self, key):
        self._connection().execute(
            "DELETE FROM cache_entries WHERE key = ?", (key,))

    def prune(self, now, *, force=False):
        """Drop expired rows and cap the table; returns rows removed.

        Runs a real sweep only every :data:`PRUNE_EVERY` calls (every
        call on ``force=True``); when over *capacity* afterwards, the
        soonest-to-expire entries are evicted first.
        """
        self._sets_since_prune += 1
        if not force and self._sets_since_prune < self.PRUNE_EVERY:
            return 0
        self._sets_since_prune = 0
        conn = self._connection()
        removed = conn.execute(
            "DELETE FROM cache_entries WHERE expires_at <= ?",
            (now - self.retain_stale_s,)).rowcount
        excess = conn.execute(
            "SELECT COUNT(*) FROM cache_entries").fetchone()[0] \
            - self.capacity
        if excess > 0:
            conn.execute(
                "DELETE FROM cache_entries WHERE key IN ("
                " SELECT key FROM cache_entries"
                " ORDER BY expires_at LIMIT ?)", (excess,))
            removed += excess
        self.evictions += max(0, removed)
        return removed

    def tag_versions(self, tags):
        tags = list(tags)
        if not tags:
            return {}
        marks = ", ".join("?" for _ in tags)
        rows = self._connection().execute(
            f"SELECT tag, version FROM cache_tags WHERE tag IN ({marks})",
            tags).fetchall()
        found = dict(rows)
        return {tag: found.get(tag, 0) for tag in tags}

    def bump_tags(self, tags):
        conn = self._connection()
        for tag in tags:
            conn.execute(
                "INSERT INTO cache_tags (tag, version) VALUES (?, 1)"
                " ON CONFLICT(tag) DO UPDATE SET version = version + 1",
                (tag,))


class PortalCache:
    """The two-layer read-through cache one serving process uses.

    Parameters
    ----------
    clock:
        Object with a ``now`` attribute (the deployment's
        :class:`~repro.hpc.simclock.SimClock`, or a wall-clock shim in
        the prefork runner).  TTLs are measured against it.
    shared:
        The cross-worker store (defaults to a private
        :class:`InMemorySharedStore`).
    l1_capacity:
        Entries held in this process's L1 LRU.
    obs:
        Optional :class:`~repro.obs.Observability` facade; hit/miss/
        eviction/invalidation counters land in its metrics registry.
    stale_grace_s:
        Seconds past expiry an entry remains *servable as stale* via
        :meth:`get_stale` (stale-while-revalidate / serve-stale-on-
        error).  0 disables stale retention entirely — entries are
        discarded at expiry exactly as before; the serving tier's
        config turns it on.
    """

    def __init__(self, clock, *, shared=None, l1_capacity=256, obs=None,
                 stale_grace_s=0.0):
        self.clock = clock
        self.shared = shared if shared is not None \
            else InMemorySharedStore()
        self.l1_capacity = int(l1_capacity)
        self._l1 = OrderedDict()
        self._lock = threading.Lock()
        self.obs = obs
        self.stale_grace_s = float(stale_grace_s)
        if self.stale_grace_s > 0 and hasattr(self.shared,
                                              "retain_stale_s"):
            # The shared sweep must not reap rows we may still serve.
            self.shared.retain_stale_s = max(
                self.shared.retain_stale_s, self.stale_grace_s)
        self._receivers = []

    # -- metrics -------------------------------------------------------
    def _count(self, name, **labels):
        if self.obs is None:
            return
        helps = {
            "serve_cache_hits_total":
                "Cache hits by route and layer (l1/l2)",
            "serve_cache_misses_total":
                "Cache misses (cold or invalidated) by route",
            "serve_cache_evictions_total":
                "L1 LRU evictions",
            "serve_cache_invalidations_total":
                "Tag bumps by tag kind",
            "serve_cache_stale_hits_total":
                "Expired entries served during degraded mode or in "
                "place of an error, by route",
        }
        self.obs.metrics.counter(name, help=helps.get(name, "")).labels(
            **labels).inc()

    def _gauge_entries(self):
        if self.obs is None:
            return
        self.obs.metrics.gauge(
            "serve_cache_l1_entries",
            help="Entries currently in this worker's L1").set(
            len(self._l1))

    # -- core protocol -------------------------------------------------
    def _fresh(self, entry):
        if entry is None:
            return False
        if entry.expires_at <= self.clock.now:
            return False
        if entry.tag_versions:
            current = self.shared.tag_versions(entry.tag_versions)
            for tag, version in entry.tag_versions.items():
                if current.get(tag, 0) != version:
                    return False
        return True

    def _within_grace(self, entry):
        """May *entry* still be served as stale?  Expiry plus grace is
        the only bound — a stale serve deliberately ignores tag
        versions, because during a brownout "recent" beats "nothing"."""
        if entry is None or self.stale_grace_s <= 0:
            return False
        return self.clock.now <= entry.expires_at + self.stale_grace_s

    def get(self, key, route="<anon>"):
        """Fresh cached value for *key*, or None (counting the miss)."""
        with self._lock:
            entry = self._l1.get(key)
            if entry is not None:
                self._l1.move_to_end(key)
        if self._fresh(entry):
            self._count("serve_cache_hits_total", route=route,
                        layer="l1")
            return entry.value
        if entry is not None and not self._within_grace(entry):
            with self._lock:
                self._l1.pop(key, None)
        entry = self.shared.get(key)
        if self._fresh(entry):
            with self._lock:    # promote to L1
                self._l1[key] = entry
                self._evict_l1()
            self._gauge_entries()
            self._count("serve_cache_hits_total", route=route,
                        layer="l2")
            return entry.value
        if entry is not None and not self._within_grace(entry):
            self.shared.delete(key)
        self._count("serve_cache_misses_total", route=route)
        return None

    def get_stale(self, key, route="<anon>"):
        """Best recent value for *key*, fresh or not, within the stale
        grace window — or None.

        The degraded-mode read: TTL expiry and tag invalidation are
        both ignored (a superseded page from minutes ago is still the
        honest best answer while the database is down); only entries
        older than ``expires_at + stale_grace_s`` are refused.  Counts
        a stale hit only when the entry would *not* have been served
        by :meth:`get`.
        """
        with self._lock:
            entry = self._l1.get(key)
        if entry is None:
            entry = self.shared.get(key)
        if entry is None:
            return None
        if self._fresh(entry):
            return entry.value
        if not self._within_grace(entry):
            return None
        self._count("serve_cache_stale_hits_total", route=route)
        return entry.value

    def set(self, key, value, *, tags=(), ttl=60.0, tag_versions=None):
        """Store *value* under *key*, pinned to tag versions.

        ``tag_versions`` is the snapshot taken *before* the value was
        rendered (see :meth:`read_through`); when omitted, the current
        versions are read — only safe when no time passed between
        rendering and storing.
        """
        if tag_versions is None:
            tag_versions = self.shared.tag_versions(tags)
        entry = CacheEntry(value, self.clock.now + ttl, tag_versions)
        self.shared.set(key, entry)
        prune = getattr(self.shared, "prune", None)
        if prune is not None:
            prune(self.clock.now)
        with self._lock:
            self._l1[key] = entry
            self._l1.move_to_end(key)
            self._evict_l1()
        self._gauge_entries()

    def _evict_l1(self):
        while len(self._l1) > self.l1_capacity:
            self._l1.popitem(last=False)
            self._count("serve_cache_evictions_total", layer="l1")

    def read_through(self, key, loader, *, tags=(), ttl=60.0,
                     route="<anon>"):
        """``get`` or compute-and-``set``: the canonical usage.

        Tag versions are snapshotted *before* the loader runs: a write
        that commits while the value renders bumps a tag past the
        snapshot, so the entry stored here is already stale and the
        next read re-renders — the loader's result can never be pinned
        to post-write versions.
        """
        value = self.get(key, route=route)
        if value is None:
            versions = self.shared.tag_versions(tags)
            value = loader()
            self.set(key, value, tags=tags, ttl=ttl,
                     tag_versions=versions)
        return value

    def invalidate(self, tags):
        """Bump *tags*: every entry depending on any of them is stale."""
        tags = set(tags)
        if not tags:
            return
        self.shared.bump_tags(tags)
        for tag in sorted(tags):
            kind = tag.split(":", 1)[0]
            self._count("serve_cache_invalidations_total", kind=kind)

    @property
    def l1_entries(self):
        return len(self._l1)

    # -- model-write invalidation --------------------------------------
    def connect_invalidation(self):
        """Subscribe to ORM write signals; call :meth:`close` to undo."""
        from ..webstack.signals import post_delete, post_save

        def on_save(sender, instance=None, instances=None, **kwargs):
            self._on_write(sender, instance, instances)

        def on_delete(sender, instance=None, instances=None, **kwargs):
            self._on_write(sender, instance, instances)

        post_save.connect(on_save)
        post_delete.connect(on_delete)
        self._receivers = [(post_save, on_save), (post_delete, on_delete)]
        return self

    def close(self):
        for signal, receiver in self._receivers:
            signal.disconnect(receiver)
        self._receivers = []
        close = getattr(self.shared, "close", None)
        if close is not None:
            close()

    def _on_write(self, sender, instance, instances):
        rule = MODEL_INVALIDATION.get(getattr(sender, "__name__", None))
        if rule is None:
            return
        instance_tags, coarse_tags = rule
        if instance is not None:
            self.invalidate(instance_tags(instance))
        elif instances:
            tags = set()
            for obj in instances:
                tags |= instance_tags(obj)
            self.invalidate(tags)
        else:
            # Set-oriented write with no rows in hand (queryset
            # ``update``/``delete``): bump the model-wide tags, which
            # detail pages carry alongside their per-entity tag.
            self.invalidate(coarse_tags)


# ----------------------------------------------------------------------
# What a write to each model makes stale.
#
# Per-entity tags (``sim:42``) keep invalidation targeted; the
# ``*-wide`` tags exist only so that set-oriented writes without
# instances can still reach detail pages conservatively.
# ----------------------------------------------------------------------

def _simulation_tags(sim):
    tags = {"sims", "stats", "home", "stars"}
    if sim.pk is not None:
        tags.add(f"sim:{sim.pk}")
    star_id = getattr(sim, "star_id", None)
    if star_id:
        tags.add(f"star:{star_id}")
    owner_id = getattr(sim, "owner_id", None)
    if owner_id:
        tags.add(f"user-sims:{owner_id}")
    campaign_id = getattr(sim, "campaign_id", None)
    if campaign_id:
        tags.add(f"campaign:{campaign_id}")
    return tags


def _star_tags(star):
    tags = {"stars", "star-suggest", "home", "stats"}
    if star.pk is not None:
        tags.add(f"star:{star.pk}")
    return tags


def _observation_tags(observation):
    star_id = getattr(observation, "star_id", None)
    return {f"star:{star_id}"} if star_id else {"star-wide"}


def _campaign_tags(campaign):
    return {f"campaign:{campaign.pk}"} if campaign.pk is not None \
        else set()


def _telemetry_tags(_record):
    return {"stats"}


MODEL_INVALIDATION = {
    # model name -> (per-instance tags, coarse tags for row-less writes)
    "Simulation": (_simulation_tags,
                   {"sims", "sim-wide", "stats", "home", "stars",
                    "star-wide", "user-sims-wide"}),
    "Star": (_star_tags,
             {"stars", "star-wide", "star-suggest", "home", "stats"}),
    "ObservationSet": (_observation_tags, {"star-wide"}),
    "CampaignRecord": (_campaign_tags, {"campaign-wide"}),
    # Daemon telemetry and ledger rows feed only the statistics digest.
    "MachineRecord": (_telemetry_tags, {"stats"}),
    "AllocationRecord": (_telemetry_tags, {"stats"}),
    "ReservationRecord": (_telemetry_tags, {"stats"}),
    "LeaseRecord": (_telemetry_tags, {"stats"}),
}


# ----------------------------------------------------------------------
# Route-level read-through: which portal pages are cacheable, for how
# long, and which tags they depend on.
# ----------------------------------------------------------------------

class CacheRule:
    """TTL + tag builder for one cacheable route."""

    __slots__ = ("ttl", "tags")

    def __init__(self, ttl, tags):
        self.ttl = float(ttl)
        self.tags = tags     # callable(view kwargs) -> set of tags


def _kw(tag_format, extra=()):
    def build(kwargs):
        tags = {tag_format.format(**kwargs)}
        tags.update(extra)
        return tags
    return build


def _const(*tags):
    fixed = set(tags)
    return lambda kwargs: set(fixed)


DEFAULT_CACHE_RULES = {
    "home": CacheRule(120, _const("home")),
    "star-list": CacheRule(600, _const("stars")),
    "star-detail": CacheRule(600, _kw("star:{pk}", ("star-wide",))),
    "star-suggest": CacheRule(600, _const("star-suggest")),
    "sim-list": CacheRule(60, _const("sims")),
    "sim-detail": CacheRule(60, _kw("sim:{pk}", ("sim-wide",))),
    "sim-hr": CacheRule(600, _kw("sim:{pk}", ("sim-wide",))),
    "sim-echelle": CacheRule(600, _kw("sim:{pk}", ("sim-wide",))),
    "sim-hr-svg": CacheRule(600, _kw("sim:{pk}", ("sim-wide",))),
    "sim-echelle-svg": CacheRule(600, _kw("sim:{pk}", ("sim-wide",))),
    "statistics": CacheRule(300, _const("stats")),
    "feed-star-results": CacheRule(300, _kw("star:{pk}",
                                            ("star-wide",))),
    "feed-star-progress": CacheRule(300, _kw("user-sims:{pk}",
                                             ("user-sims-wide",))),
    "api-sim-list": CacheRule(30, _const("sims")),
    "api-campaign-detail": CacheRule(30, _kw("campaign:{pk}",
                                             ("sim-wide",))),
}


def _canonical_query(query_string):
    if not query_string:
        return ""
    return "&".join(sorted(query_string.split("&")))


#: Routes that must never be cached (nor rate limited — see
#: :class:`~repro.serve.ratelimit.RateLimitMiddleware`): probes and
#: scrapes are only useful live, and a cached "ready" would lie to the
#: load balancer exactly when the truth matters.
EXEMPT_ROUTES = frozenset({"metrics", "healthz", "readyz"})


class CacheMiddleware:
    """Route-granular read-through caching of whole responses.

    Only anonymous GETs of configured routes are served from cache —
    a request carrying a session cookie always goes to the view, so a
    logged-in astronomer never receives (or populates) a shared page.
    Responses are stored as plain tuples, which is what lets the
    shared store hold them across process boundaries.

    With a *health* tracker attached, the cache also brownouts
    gracefully: while degraded, expired-but-recent copies are served
    with ``X-Cache: stale``; and any request that ends in a 5xx is
    answered with its stale copy when one exists (serve-stale-on-
    error), regardless of mode.
    """

    def __init__(self, cache, rules=None, *, health=None):
        self.cache = cache
        self.rules = dict(DEFAULT_CACHE_RULES if rules is None
                          else rules)
        for route in EXEMPT_ROUTES:
            self.rules.pop(route, None)
        self.health = health

    @staticmethod
    def _key(request):
        query = _canonical_query(request.META.get("QUERY_STRING", ""))
        return f"{request.path}?{query}"

    def process_request(self, request):
        from ..webstack.http import HttpResponse
        from ..webstack.middleware import ObservabilityMiddleware
        if request.method != "GET":
            return None
        ObservabilityMiddleware.resolve_route(request)
        route = getattr(request, "route_name", None)
        if route in EXEMPT_ROUTES:
            return None
        rule = self.rules.get(route)
        if rule is None or request.COOKIES.get("sessionid"):
            return None
        key = self._key(request)
        frozen = self.cache.get(key, route=route)
        if frozen is not None:
            return self._frozen_response(request, frozen, "hit")
        if self.health is not None and self.health.degraded:
            # Brownout: a recent saved copy beats both an error page
            # and another trip to a struggling database.
            frozen = self.cache.get_stale(key, route=route)
            if frozen is not None:
                return self._frozen_response(request, frozen, "stale")
        match = getattr(request, "_route_match", None)
        kwargs = match[2] if match else {}
        tags = rule.tags(kwargs)
        # Snapshot the tag versions *now*, before the view renders: a
        # write that commits while the view runs bumps a tag past this
        # snapshot, so the entry stored in process_response is already
        # stale — pre-write content is never pinned to post-write
        # versions.
        versions = self.cache.shared.tag_versions(tags)
        request._cache_fill = (key, rule, route, tags, versions)
        return None

    @staticmethod
    def _frozen_response(request, frozen, verdict):
        from ..webstack.http import HttpResponse
        status, content, headers = frozen
        response = HttpResponse(content, status=status)
        response.headers = dict(headers)
        response["X-Cache"] = verdict
        request._cache_hit = True
        return response

    def process_response(self, request, response):
        fill = getattr(request, "_cache_fill", None)
        if fill is None or getattr(request, "_cache_hit", False):
            return response
        if response.status_code >= 500:
            # Serve-stale-on-error: the render failed (database down,
            # deadline spent, crash) — a recent copy, if we kept one,
            # is the better answer for an anonymous GET.
            key, rule, route, tags, versions = fill
            frozen = self.cache.get_stale(key, route=route)
            if frozen is not None:
                return self._frozen_response(request, frozen, "stale")
            return response
        if response.status_code != 200 or response.cookies:
            return response
        key, rule, route, tags, versions = fill
        frozen = (response.status_code, bytes(response.content),
                  dict(response.headers))
        self.cache.set(key, frozen, tags=tags, ttl=rule.ttl,
                       tag_versions=versions)
        response["X-Cache"] = "miss"
        return response
